"""Versioned object stores — the paper's "Data Store" abstraction.

"The Data Store is an abstraction of the actual storing mechanism which
can be the node hard disk or other persistence mechanism" (Section V).
This module defines that abstraction (:class:`VersionedStore`) and the
in-memory implementation; :mod:`repro.core.filestore` provides the
disk-backed one.

Objects are addressed by ``(key, version)``. Versions are totally ordered
integers assigned by the upper layer (DATADROPLETS), so the store never
resolves conflicts — it simply keeps the versions it is given (Section
III: "DATAFLASKS does not need to take into account conflicts arising
from concurrent operations").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import CapacityExceededError

__all__ = ["StoredObject", "VersionedStore", "MemoryStore"]


@dataclass(frozen=True)
class StoredObject:
    """One immutable object version."""

    key: str
    version: int
    value: Any


class VersionedStore:
    """Interface every DATAFLASKS data store implements."""

    def put(self, key: str, version: int, value: Any) -> bool:
        """Store an object version.

        Returns ``True`` if the version was new, ``False`` if it was
        already present (idempotent re-put). Raises
        :class:`~repro.errors.CapacityExceededError` when full.
        """
        raise NotImplementedError

    def get(self, key: str, version: Optional[int] = None) -> Optional[StoredObject]:
        """Fetch an exact version, or the latest when ``version`` is None."""
        raise NotImplementedError

    def delete(self, key: str, version: Optional[int] = None) -> int:
        """Remove one version (or all versions of ``key``); returns count."""
        raise NotImplementedError

    def digest(self) -> FrozenSet[Tuple[str, int]]:
        """The (key, version) pairs held — anti-entropy's currency."""
        raise NotImplementedError

    def keys(self) -> List[str]:
        raise NotImplementedError

    def versions(self, key: str) -> List[int]:
        raise NotImplementedError

    def items(self) -> Iterator[StoredObject]:
        raise NotImplementedError

    def __len__(self) -> int:
        """Number of object versions held."""
        raise NotImplementedError

    def __contains__(self, entry: Tuple[str, int]) -> bool:
        key, version = entry
        return self.get(key, version) is not None

    def close(self) -> None:
        """Release resources (no-op for memory stores)."""


class MemoryStore(VersionedStore):
    """Dict-backed store with an optional object-count capacity.

    The capacity models the limited per-node storage the paper slices the
    system by: "Each node can replicate a limited number of objects which,
    in turn, limits the number of objects a slice can hold" (Section IV-C).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise CapacityExceededError("capacity must be positive or None")
        self.capacity = capacity
        self._data: Dict[str, Dict[int, Any]] = {}
        self._count = 0

    def put(self, key: str, version: int, value: Any) -> bool:
        versions = self._data.get(key)
        if versions is not None and version in versions:
            return False
        if self.capacity is not None and self._count >= self.capacity:
            raise CapacityExceededError(
                f"store full ({self._count}/{self.capacity} objects)"
            )
        if versions is None:
            versions = {}
            self._data[key] = versions
        versions[version] = value
        self._count += 1
        return True

    def get(self, key: str, version: Optional[int] = None) -> Optional[StoredObject]:
        versions = self._data.get(key)
        if not versions:
            return None
        if version is None:
            version = max(versions)
        if version not in versions:
            return None
        return StoredObject(key, version, versions[version])

    def delete(self, key: str, version: Optional[int] = None) -> int:
        versions = self._data.get(key)
        if not versions:
            return 0
        if version is None:
            removed = len(versions)
            del self._data[key]
        elif version in versions:
            del versions[version]
            removed = 1
            if not versions:
                del self._data[key]
        else:
            removed = 0
        self._count -= removed
        return removed

    def digest(self) -> FrozenSet[Tuple[str, int]]:
        return frozenset(
            (key, version) for key, versions in self._data.items() for version in versions
        )

    def keys(self) -> List[str]:
        return list(self._data)

    def versions(self, key: str) -> List[int]:
        return sorted(self._data.get(key, {}))

    def items(self) -> Iterator[StoredObject]:
        for key, versions in self._data.items():
            for version, value in versions.items():
                yield StoredObject(key, version, value)

    def __len__(self) -> int:
        return self._count

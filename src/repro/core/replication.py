"""Anti-entropy replication maintenance (Section VII, implemented).

The paper lists "maintaining replication level in face of churn or
faults" and "efficient state transfer when a node joins a slice" as open
challenges. This service addresses both with the standard epidemic
answer — push-pull anti-entropy inside the slice:

* Periodically pick a random slice-mate (from the intra-slice view) and
  send it our store digest, filtered to keys owned by the current slice.
* The peer answers with the objects we miss (*push*) and the digest
  entries it misses (*pull*); a final message carries the pulled items.
* A node that just joined a slice starts with an empty relevant digest,
  so the very same exchange doubles as **state transfer**.
* Objects whose key maps to a *different* slice (because this node
  migrated after storing them) are **re-homed**: re-injected into the
  epidemic as ordinary put requests so the owning slice picks them up.
  Without re-homing such objects would be stranded — invisible to the
  slice's anti-entropy and lost if their lone holder dies.
* Optionally (``gc_foreign_data``), a re-homed object is deleted once a
  member of the owning slice acknowledges it (a safe handoff), and any
  remaining foreign objects are garbage-collected after a grace period —
  the capacity/slack trade-off Section VII discusses.

Convergence: with slice size ``s``, every object reaches all replicas in
``O(log s)`` expected rounds — the classic push-pull epidemic bound.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from repro.core.config import DataFlasksConfig
from repro.core.keyspace import slice_for_key
from repro.core.messages import PutAck, PutRequest, SyncDigest, SyncItems, SyncResponse
from repro.core.sliceview import SliceViewService
from repro.core.store import VersionedStore
from repro.errors import CapacityExceededError
from repro.gossip.antientropy import missing_from
from repro.pss.base import PeerSamplingService
from repro.sim.node import Service
from repro.slicing.base import SlicingService

__all__ = ["AntiEntropyService"]


class AntiEntropyService(Service):
    """Intra-slice push-pull reconciliation."""

    name = "anti-entropy"

    REHOME_BATCH = 4  # foreign objects re-injected per anti-entropy round

    def __init__(self, store: VersionedStore, config: DataFlasksConfig) -> None:
        super().__init__()
        self.store = store
        self.config = config
        self.rounds = 0
        self._gc_pending_since: Optional[float] = None
        self._rehome_seq = itertools.count()
        # (key, version) -> req_id of the in-flight re-home put.
        self._rehoming: Dict[Tuple[str, int], Tuple[int, int]] = {}
        # Handoffs already acknowledged; never re-injected again (unless
        # gc deleted the local copy, in which case the entry is moot).
        self._rehomed_done: set = set()

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        node = self.node
        assert node is not None
        node.register_handler(SyncDigest, self._on_digest)
        node.register_handler(SyncResponse, self._on_response)
        node.register_handler(SyncItems, self._on_items)
        node.register_handler(PutAck, self._on_rehome_ack)
        node.every(self.config.antientropy_period, self._round)
        slicing = node.get_service(SlicingService)
        if slicing is not None:
            slicing.on_slice_change(self._on_slice_change)

    def stop(self) -> None:
        node = self.node
        assert node is not None
        node.unregister_handler(SyncDigest)
        node.unregister_handler(SyncResponse)
        node.unregister_handler(SyncItems)
        node.unregister_handler(PutAck)

    # ------------------------------------------------------------- helpers

    def _my_slice(self) -> Optional[int]:
        node = self.node
        assert node is not None
        slicing = node.get_service(SlicingService)
        if slicing is None:
            return None
        return slicing.my_slice()

    def _owned_digest(self, my_slice: int) -> frozenset:
        """Digest restricted to keys my current slice is responsible for."""
        return frozenset(
            (key, version)
            for key, version in self.store.digest()
            if slice_for_key(key, self.config.num_slices) == my_slice
        )

    def _store_items(self, items: Tuple[Tuple[str, int, object], ...]) -> int:
        node = self.node
        assert node is not None
        stored = 0
        for key, version, value in items:
            try:
                if self.store.put(key, version, value):
                    stored += 1
            except CapacityExceededError:
                node.metrics.inc("df.ae.rejected", node=node.id)
                break
        if stored:
            node.metrics.inc("df.ae.repaired", node=node.id, by=stored)
        return stored

    # --------------------------------------------------------------- rounds

    def _round(self) -> None:
        node = self.node
        assert node is not None
        my_slice = self._my_slice()
        if my_slice is None:
            return
        self._rehome_foreign(my_slice)
        self._maybe_gc(my_slice)
        slice_view = node.get_service(SliceViewService)
        if slice_view is None:
            return
        peer = slice_view.random_peer()
        if peer is None:
            return
        self.rounds += 1
        node.send(peer, SyncDigest(my_slice, self._owned_digest(my_slice)))

    def _on_digest(self, msg: SyncDigest, src: int) -> None:
        node = self.node
        assert node is not None
        my_slice = self._my_slice()
        if my_slice is None or my_slice != msg.slice_id:
            return  # sliced apart since the sender learnt about us
        mine = self._owned_digest(my_slice)
        they_miss = missing_from(msg.digest, mine)
        i_miss = missing_from(mine, msg.digest)
        push = tuple(
            (obj.key, obj.version, obj.value)
            for key, version in sorted(they_miss)
            for obj in (self.store.get(key, version),)
            if obj is not None
        )
        node.send(src, SyncResponse(my_slice, push=push, pull=tuple(sorted(i_miss))))

    def _on_response(self, msg: SyncResponse, src: int) -> None:
        node = self.node
        assert node is not None
        my_slice = self._my_slice()
        if my_slice is None or my_slice != msg.slice_id:
            return
        self._store_items(msg.push)
        if msg.pull:
            items = tuple(
                (obj.key, obj.version, obj.value)
                for key, version in msg.pull
                for obj in (self.store.get(key, version),)
                if obj is not None
            )
            if items:
                node.send(src, SyncItems(my_slice, items))

    def _on_items(self, msg: SyncItems, src: int) -> None:
        if self._my_slice() == msg.slice_id:
            self._store_items(msg.items)

    # ------------------------------------------------------------- re-home

    def _rehome_foreign(self, my_slice: int) -> None:
        """Re-inject stranded foreign objects into the epidemic.

        An object whose key maps to another slice (we migrated since
        storing it) is re-disseminated as a normal put request with this
        node as the "client"; members of the owning slice store it and
        ack, completing the handoff.
        """
        node = self.node
        assert node is not None
        pss = node.get_service(PeerSamplingService)
        if pss is None:
            return
        started = 0
        for key, version in sorted(self.store.digest()):
            if started >= self.REHOME_BATCH:
                break
            if slice_for_key(key, self.config.num_slices) == my_slice:
                continue
            if (key, version) in self._rehoming or (key, version) in self._rehomed_done:
                continue
            obj = self.store.get(key, version)
            if obj is None:
                continue
            req_id = (node.id, next(self._rehome_seq))
            self._rehoming[(key, version)] = req_id
            request = PutRequest(
                key=key,
                version=version,
                value=obj.value,
                req_id=req_id,
                attempt=1,
                client_id=node.id,
                ttl=self.config.ttl,
            )
            for peer in pss.sample(min(3, self.config.effective_fanout)):
                node.send(peer, request)
            started += 1
            node.metrics.inc("df.ae.rehomed", node=node.id)

    def reset_rehoming(self) -> None:
        """Forget handoff history — call after ``num_slices`` changes.

        A reconfiguration remaps every key, so objects previously handed
        off may need re-homing again under the new mapping.
        """
        self._rehoming.clear()
        self._rehomed_done.clear()

    def _on_rehome_ack(self, msg: PutAck, src: int) -> None:
        """A member of the owning slice confirmed a re-homed object."""
        entry = next(
            (e for e, req in self._rehoming.items() if req == msg.req_id), None
        )
        if entry is None:
            return  # stale ack for a handoff already settled
        del self._rehoming[entry]
        self._rehomed_done.add(entry)
        if self.config.gc_foreign_data:
            # Safe handoff: the owning slice has the object, drop our copy.
            key, version = entry
            if self.store.delete(key, version):
                node = self.node
                assert node is not None
                node.metrics.inc("df.ae.gc", node=node.id)

    # ------------------------------------------------------------------ gc

    def _on_slice_change(self, old: int, new: int) -> None:
        """Remember when we changed slice; GC of foreign data waits a grace
        period of a few anti-entropy rounds so slack replicas survive brief
        slice flapping."""
        node = self.node
        assert node is not None
        self._gc_pending_since = node.now

    def _maybe_gc(self, my_slice: int) -> None:
        if not self.config.gc_foreign_data or self._gc_pending_since is None:
            return
        node = self.node
        assert node is not None
        grace = 3 * self.config.antientropy_period
        if node.now - self._gc_pending_since < grace:
            return
        self._gc_pending_since = None
        removed = 0
        for key in self.store.keys():
            if slice_for_key(key, self.config.num_slices) != my_slice:
                removed += self.store.delete(key)
        if removed:
            node.metrics.inc("df.ae.gc", node=node.id, by=removed)

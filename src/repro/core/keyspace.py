"""Key-to-slice mapping.

DATAFLASKS partitions data by key range across slices (Section IV-A):
"Each set will be responsible for storing a subset of the data according
to its key range". We realise the key-range mapping with a stable uniform
hash: slice ``blake2b(key) mod k`` owns the key. Every node evaluates the
same pure function locally — the essence of the paper's "nodes locally
decide if they need to store that individual item".
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigurationError

__all__ = ["slice_for_key", "key_hash"]


def key_hash(key: str) -> int:
    """Stable 64-bit hash of a key (BLAKE2b, independent of PYTHONHASHSEED)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def slice_for_key(key: str, num_slices: int) -> int:
    """The slice index responsible for ``key`` in a ``num_slices`` system."""
    if num_slices <= 0:
        raise ConfigurationError("num_slices must be positive")
    return key_hash(key) % num_slices

"""Disk-backed data store: append-only log + in-memory index.

The persistence mechanism behind the paper's Data Store abstraction when
the "node hard disk" is used. Design follows the classic log-structured
KV recipe:

* every ``put`` appends one framed record to a log file and fsync-free
  flushes (simulated nodes don't need durability past process death, but
  the format is crash-recoverable anyway: truncated tails are ignored);
* ``delete`` appends a tombstone;
* an in-memory index maps ``(key, version)`` to log offsets; ``get``
  seeks and reads;
* :meth:`compact` rewrites the log dropping deleted/duplicate records.

Record frame: ``[4-byte length][1-byte kind][payload]`` where payload is
``key_len(4) | key | version(8 signed) | value_len(4) | value`` and kind
is ``P`` (put) or ``T`` (tombstone). Values must be ``bytes``.
"""

from __future__ import annotations

import os
import struct
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.errors import CapacityExceededError, StoreError
from repro.core.store import StoredObject, VersionedStore

__all__ = ["FileStore"]

_HEADER = struct.Struct(">IB")  # record length, kind
_KIND_PUT = ord("P")
_KIND_TOMBSTONE = ord("T")


def _encode(key: str, version: int, value: bytes) -> bytes:
    key_bytes = key.encode("utf-8")
    return b"".join(
        (
            struct.pack(">I", len(key_bytes)),
            key_bytes,
            struct.pack(">q", version),
            struct.pack(">I", len(value)),
            value,
        )
    )


def _decode(payload: bytes) -> Tuple[str, int, bytes]:
    offset = 0
    (key_len,) = struct.unpack_from(">I", payload, offset)
    offset += 4
    key = payload[offset : offset + key_len].decode("utf-8")
    offset += key_len
    (version,) = struct.unpack_from(">q", payload, offset)
    offset += 8
    (value_len,) = struct.unpack_from(">I", payload, offset)
    offset += 4
    value = payload[offset : offset + value_len]
    return key, version, value


class FileStore(VersionedStore):
    """Log-structured persistent store.

    :param path: log file path; created if absent, recovered if present.
    :param capacity: optional max number of live object versions.
    """

    def __init__(self, path: str, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise StoreError("capacity must be positive or None")
        self.path = path
        self.capacity = capacity
        # (key, version) -> (offset, value_len-agnostic record length)
        self._index: Dict[str, Dict[int, Tuple[int, int]]] = {}
        self._count = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._file = open(path, "a+b")
        self._recover()

    # ------------------------------------------------------------ recovery

    def _recover(self) -> None:
        """Rebuild the index by scanning the log; ignore a truncated tail."""
        self._file.seek(0)
        offset = 0
        while True:
            header = self._file.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break
            length, kind = _HEADER.unpack(header)
            payload = self._file.read(length)
            if len(payload) < length:
                break  # truncated tail from a crash mid-append
            key, version, _value = _decode(payload)
            if kind == _KIND_PUT:
                self._index_put(key, version, offset, _HEADER.size + length)
            elif kind == _KIND_TOMBSTONE:
                self._index_delete(key, version)
            offset += _HEADER.size + length
        self._file.seek(0, os.SEEK_END)

    def _index_put(self, key: str, version: int, offset: int, record_len: int) -> None:
        versions = self._index.setdefault(key, {})
        if version not in versions:
            self._count += 1
        versions[version] = (offset, record_len)

    def _index_delete(self, key: str, version: int) -> None:
        versions = self._index.get(key)
        if versions and version in versions:
            del versions[version]
            self._count -= 1
            if not versions:
                del self._index[key]

    # ----------------------------------------------------------------- API

    def put(self, key: str, version: int, value: Any) -> bool:
        if not isinstance(value, (bytes, bytearray)):
            raise StoreError("FileStore values must be bytes")
        versions = self._index.get(key)
        if versions is not None and version in versions:
            return False
        if self.capacity is not None and self._count >= self.capacity:
            raise CapacityExceededError(
                f"store full ({self._count}/{self.capacity} objects)"
            )
        payload = _encode(key, version, bytes(value))
        record = _HEADER.pack(len(payload), _KIND_PUT) + payload
        offset = self._file.seek(0, os.SEEK_END)
        self._file.write(record)
        self._file.flush()
        self._index_put(key, version, offset, len(record))
        return True

    def get(self, key: str, version: Optional[int] = None) -> Optional[StoredObject]:
        versions = self._index.get(key)
        if not versions:
            return None
        if version is None:
            version = max(versions)
        entry = versions.get(version)
        if entry is None:
            return None
        offset, record_len = entry
        self._file.seek(offset)
        record = self._file.read(record_len)
        _length, kind = _HEADER.unpack(record[: _HEADER.size])
        if kind != _KIND_PUT:  # pragma: no cover - index corruption guard
            raise StoreError(f"index points at non-put record for {key}@{version}")
        read_key, read_version, value = _decode(record[_HEADER.size :])
        if (read_key, read_version) != (key, version):  # pragma: no cover
            raise StoreError(f"log corruption at offset {offset}")
        self._file.seek(0, os.SEEK_END)
        return StoredObject(key, version, value)

    def delete(self, key: str, version: Optional[int] = None) -> int:
        versions = self._index.get(key)
        if not versions:
            return 0
        targets = [version] if version is not None else list(versions)
        removed = 0
        for v in targets:
            if v not in versions:
                continue
            payload = _encode(key, v, b"")
            self._file.seek(0, os.SEEK_END)
            self._file.write(_HEADER.pack(len(payload), _KIND_TOMBSTONE) + payload)
            self._index_delete(key, v)
            removed += 1
        if removed:
            self._file.flush()
        return removed

    def digest(self) -> FrozenSet[Tuple[str, int]]:
        return frozenset(
            (key, version) for key, versions in self._index.items() for version in versions
        )

    def keys(self) -> List[str]:
        return list(self._index)

    def versions(self, key: str) -> List[int]:
        return sorted(self._index.get(key, {}))

    def items(self) -> Iterator[StoredObject]:
        for key in list(self._index):
            for version in self.versions(key):
                obj = self.get(key, version)
                if obj is not None:
                    yield obj

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------ lifecycle

    def compact(self) -> None:
        """Rewrite the log keeping only live records, then swap files."""
        tmp_path = self.path + ".compact"
        with open(tmp_path, "wb") as tmp:
            new_index: Dict[str, Dict[int, Tuple[int, int]]] = {}
            offset = 0
            for obj in self.items():
                payload = _encode(obj.key, obj.version, obj.value)
                record = _HEADER.pack(len(payload), _KIND_PUT) + payload
                tmp.write(record)
                new_index.setdefault(obj.key, {})[obj.version] = (offset, len(record))
                offset += len(record)
        self._file.close()
        os.replace(tmp_path, self.path)
        self._file = open(self.path, "a+b")
        self._index = new_index

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

"""The Request Handler service (paper Section V).

"The request Handler is responsible for dealing with requests made to the
node. It knows to which slice the node belongs to from the Slice Manager
and stores and retrieves correspondent data to and from the Data Store."

Routing logic (Section IV-B, including its optimisation):

* Every request carries a dissemination id; a node processes each id once
  (infect-and-die flooding with deduplication).
* A node **outside** the target slice merely relays: forward to
  ``fanout`` random global-PSS peers, TTL permitting.
* A node **inside** the target slice acts — stores the object / serves
  the read, replies to the client — and keeps disseminating **only
  intra-slice**, through the slice view, so the object reaches every
  replica without re-flooding the whole system.

Metrics written (per node): ``df.put.stored``, ``df.put.duplicate``,
``df.put.rejected``, ``df.get.hit``, ``df.get.miss``, ``df.fwd.global``,
``df.fwd.slice``, ``df.dedup.dropped``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import DataFlasksConfig
from repro.core.keyspace import slice_for_key
from repro.core.messages import GetReply, GetRequest, PutAck, PutRequest
from repro.core.sliceview import SliceViewService
from repro.core.store import VersionedStore
from repro.errors import CapacityExceededError
from repro.gossip.dissemination import DedupCache
from repro.pss.base import PeerSamplingService
from repro.sim.node import Service
from repro.slicing.base import SlicingService

__all__ = ["RequestHandler"]


class RequestHandler(Service):
    """Epidemic request processing for one DATAFLASKS node."""

    name = "request-handler"

    def __init__(self, store: VersionedStore, config: DataFlasksConfig) -> None:
        super().__init__()
        self.store = store
        self.config = config
        self._seen = DedupCache(config.dedup_capacity)

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        node = self.node
        assert node is not None
        node.register_handler(PutRequest, self._on_put)
        node.register_handler(GetRequest, self._on_get)

    def stop(self) -> None:
        node = self.node
        assert node is not None
        node.unregister_handler(PutRequest)
        node.unregister_handler(GetRequest)

    # ------------------------------------------------------------- helpers

    def _my_slice(self) -> Optional[int]:
        node = self.node
        assert node is not None
        slicing = node.get_service(SlicingService)
        assert slicing is not None, "RequestHandler requires a SlicingService"
        return slicing.my_slice()

    def _global_targets(self) -> List[int]:
        node = self.node
        assert node is not None
        pss = node.get_service(PeerSamplingService)
        assert pss is not None, "RequestHandler requires a PeerSamplingService"
        return pss.sample(self.config.effective_fanout)

    def _slice_targets(self) -> List[int]:
        node = self.node
        assert node is not None
        slice_view = node.get_service(SliceViewService)
        if slice_view is None:
            return []
        return slice_view.sample(self.config.intra_slice_fanout)

    def _forward(self, msg, *, intra_slice: bool) -> None:
        """Relay a request with a decremented TTL."""
        node = self.node
        assert node is not None
        if msg.ttl <= 0:
            node.metrics.inc("df.ttl.expired")
            return
        relay = _with_ttl(msg, msg.ttl - 1)
        if intra_slice:
            targets = self._slice_targets()
            counter = "df.fwd.slice"
        else:
            targets = self._global_targets()
            counter = "df.fwd.global"
        for target in targets:
            node.send(target, relay)
        if targets:
            node.metrics.inc(counter, node=node.id, by=len(targets))

    # ----------------------------------------------------------------- put

    def _on_put(self, msg: PutRequest, src: int) -> None:
        node = self.node
        assert node is not None
        if self._seen.seen(("put", msg.msg_id)):
            node.metrics.inc("df.dedup.dropped")
            return
        my_slice = self._my_slice()
        target_slice = slice_for_key(msg.key, self.config.num_slices)
        if my_slice is None or my_slice != target_slice:
            # Not ours (or slice unknown yet): keep the epidemic going.
            self._forward(msg, intra_slice=False)
            return
        # Local decision: this node is responsible for the object.
        stored = self._store_object(msg)
        if stored is not None:
            node.send(
                msg.client_id,
                PutAck(msg.key, msg.version, msg.req_id, responder_slice=my_slice),
            )
        # Spread to the rest of the slice (replication), never re-flood
        # globally from inside the slice.
        self._forward(msg, intra_slice=True)

    def _store_object(self, msg: PutRequest) -> Optional[bool]:
        """Store; returns True/False for new/duplicate, None if rejected."""
        node = self.node
        assert node is not None
        try:
            fresh = self.store.put(msg.key, msg.version, msg.value)
        except CapacityExceededError:
            node.metrics.inc("df.put.rejected", node=node.id)
            return None
        counter = "df.put.stored" if fresh else "df.put.duplicate"
        node.metrics.inc(counter, node=node.id)
        return fresh

    # ----------------------------------------------------------------- get

    def _on_get(self, msg: GetRequest, src: int) -> None:
        node = self.node
        assert node is not None
        if self._seen.seen(("get", msg.msg_id)):
            node.metrics.inc("df.dedup.dropped")
            return
        # The paper's requirement is that "a read request must reach at
        # least one node holding the target item" — ANY holder answers,
        # even one that migrated out of the object's slice since storing
        # it (its copy is valid until re-homing hands it over).
        obj = self.store.get(msg.key, msg.version)
        my_slice = self._my_slice()
        if obj is not None:
            node.metrics.inc("df.get.hit", node=node.id)
            node.send(
                msg.client_id,
                GetReply(
                    key=obj.key,
                    version=obj.version,
                    value=obj.value,
                    found=True,
                    req_id=msg.req_id,
                    # Only advertise slice membership the client's load
                    # balancer can rely on: a holder outside the target
                    # slice must not be cached as a slice member.
                    responder_slice=my_slice
                    if my_slice == slice_for_key(msg.key, self.config.num_slices)
                    else None,
                ),
            )
            # Found: no need to keep disseminating on this branch.
            return
        target_slice = slice_for_key(msg.key, self.config.num_slices)
        if my_slice is None or my_slice != target_slice:
            self._forward(msg, intra_slice=False)
            return
        # In the right slice but this replica lacks the object (capacity,
        # anti-entropy lag, or a read racing its write): try slice-mates.
        node.metrics.inc("df.get.miss", node=node.id)
        self._forward(msg, intra_slice=True)


def _with_ttl(msg, ttl: int):
    """A copy of a request dataclass with a new TTL (frozen dataclasses)."""
    if isinstance(msg, PutRequest):
        return PutRequest(
            msg.key, msg.version, msg.value, msg.req_id, msg.attempt, msg.client_id, ttl
        )
    if isinstance(msg, GetRequest):
        return GetRequest(
            msg.key, msg.version, msg.req_id, msg.attempt, msg.client_id, ttl
        )
    raise TypeError(f"not a relayable request: {type(msg).__name__}")

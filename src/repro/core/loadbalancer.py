"""Client-side Load Balancer strategies (paper Sections V and VII).

"The Load Balancer provides the Client Library with references to nodes
that can answer client requests. [...] For now, the Load Balancer
provides the client with a random contact node." Section VII then points
at the optimisation space: "If the Load Balancer was able to know exactly
which node to contact for each request, dissemination mechanisms would be
reduced to the minimum. As this is not feasible in practice, cache
mechanisms should be studied."

Three strategies are provided; bench A3 compares them:

* :class:`RandomLoadBalancer` — the paper's baseline,
* :class:`RoundRobinLoadBalancer` — spreads load deterministically,
* :class:`SliceAwareLoadBalancer` — the Section VII cache: it learns
  ``(node, slice)`` pairs from acks/replies and routes a request for key
  ``h`` straight to a known member of ``slice_for_key(h)`` when one is
  cached, falling back to random otherwise.

A *directory* callable supplies candidate contact nodes; in a real
deployment the Load Balancer service is fed by the Peer Sampling Service
of any DATAFLASKS node the client already knows (Figure 2), which is what
the cluster builder wires up.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Callable, Dict, List, Optional, Set

from repro.core.keyspace import slice_for_key

__all__ = [
    "LoadBalancer",
    "RandomLoadBalancer",
    "RoundRobinLoadBalancer",
    "SliceAwareLoadBalancer",
]

Directory = Callable[[], List[int]]


class LoadBalancer:
    """Strategy interface: pick a contact node for each request."""

    def __init__(self, directory: Directory, rng: random.Random) -> None:
        self._directory = directory
        self._rng = rng

    def candidates(self) -> List[int]:
        """Current contactable node ids, sorted for determinism."""
        return sorted(self._directory())

    def pick(self, key: str, num_slices: int) -> Optional[int]:
        """Choose the contact node for a request on ``key``."""
        raise NotImplementedError

    def note_responder(self, node_id: int, slice_id: Optional[int]) -> None:
        """Feed back who answered and which slice it claimed (may be ignored)."""

    def note_failure(self, node_id: int) -> None:
        """Feed back that a contact did not answer (may be ignored)."""


class RandomLoadBalancer(LoadBalancer):
    """Uniformly random contact node — the paper's current strategy."""

    def pick(self, key: str, num_slices: int) -> Optional[int]:
        nodes = self.candidates()
        if not nodes:
            return None
        return self._rng.choice(nodes)


class RoundRobinLoadBalancer(LoadBalancer):
    """Cycle through the directory."""

    def __init__(self, directory: Directory, rng: random.Random) -> None:
        super().__init__(directory, rng)
        self._cursor = 0

    def pick(self, key: str, num_slices: int) -> Optional[int]:
        nodes = self.candidates()
        if not nodes:
            return None
        node = nodes[self._cursor % len(nodes)]
        self._cursor += 1
        return node


class SliceAwareLoadBalancer(LoadBalancer):
    """Cache of slice membership learnt from replies (Section VII).

    When a cached member of the key's target slice exists, contact it
    directly — the request then needs only intra-slice dissemination.
    Failed contacts are evicted so churn cannot poison the cache forever.
    """

    def __init__(self, directory: Directory, rng: random.Random, per_slice: int = 4) -> None:
        super().__init__(directory, rng)
        self.per_slice = per_slice
        self._slice_members: Dict[int, List[int]] = defaultdict(list)
        self._slice_of: Dict[int, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def pick(self, key: str, num_slices: int) -> Optional[int]:
        target = slice_for_key(key, num_slices)
        cached = self._slice_members.get(target)
        if cached:
            self.cache_hits += 1
            return self._rng.choice(cached)
        self.cache_misses += 1
        nodes = self.candidates()
        if not nodes:
            return None
        return self._rng.choice(nodes)

    def note_responder(self, node_id: int, slice_id: Optional[int]) -> None:
        if slice_id is None:
            return
        previous = self._slice_of.get(node_id)
        if previous == slice_id:
            return
        if previous is not None and node_id in self._slice_members.get(previous, []):
            self._slice_members[previous].remove(node_id)
        self._slice_of[node_id] = slice_id
        members = self._slice_members[slice_id]
        if node_id not in members:
            members.append(node_id)
            while len(members) > self.per_slice:
                members.pop(0)

    def note_failure(self, node_id: int) -> None:
        slice_id = self._slice_of.pop(node_id, None)
        if slice_id is not None and node_id in self._slice_members.get(slice_id, []):
            self._slice_members[slice_id].remove(node_id)

    def cached_slices(self) -> Set[int]:
        """Slices with at least one cached member (diagnostics)."""
        return {s for s, members in self._slice_members.items() if members}

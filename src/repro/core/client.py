"""The DATAFLASKS client library (paper Section V).

"The client library is divided into two subcomponents. One is responsible
for implementing the DATAFLASKS API and serves client requests by
contacting a DATAFLASKS node. The other is responsible for dealing with
reply messages [...] it must know how to handle multiple replies for the
same request."

:class:`DataFlasksClient` is itself a simulated node (it sends and
receives network messages). Operations are asynchronous: ``put``/``get``
return a :class:`PendingOp` which completes when enough acks / the first
reply arrive; duplicates — inherent to epidemic dissemination — are
counted and dropped by request id. Timeouts trigger retries through a
fresh Load Balancer contact.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.config import DataFlasksConfig
from repro.core.loadbalancer import LoadBalancer
from repro.core.messages import GetReply, GetRequest, PutAck, PutRequest, ReqId
from repro.errors import ClientError
from repro.sim.node import Node, SimContext

__all__ = ["PendingOp", "DataFlasksClient", "PUT", "GET"]

PUT = "put"
GET = "get"

PENDING = "pending"
SUCCEEDED = "succeeded"
FAILED = "failed"


class PendingOp:
    """A client operation in flight.

    Completion: a put succeeds once ``acks_required`` distinct nodes have
    acknowledged; a get succeeds on the first positive reply. ``fail``
    fires after the final retry times out.
    """

    def __init__(
        self,
        kind: str,
        key: str,
        version: Optional[int],
        req_id: ReqId,
        acks_required: int,
        started_at: float,
    ) -> None:
        self.kind = kind
        self.key = key
        self.version = version
        self.req_id = req_id
        self.acks_required = acks_required
        self.started_at = started_at
        self.completed_at: Optional[float] = None
        self.status = PENDING
        self.value: Any = None
        self.value_to_put: Any = None  # payload of a put, kept for retries
        self.result_version: Optional[int] = None
        self.acks: set = set()
        self.replies = 0
        self.duplicate_replies = 0
        self.attempts = 1
        self.error: Optional[str] = None
        self._callbacks: List[Callable[["PendingOp"], None]] = []

    # -------------------------------------------------------------- status

    @property
    def done(self) -> bool:
        return self.status != PENDING

    @property
    def succeeded(self) -> bool:
        return self.status == SUCCEEDED

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    def on_complete(self, callback: Callable[["PendingOp"], None]) -> None:
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    # ------------------------------------------------------------ internal

    def _complete(self, status: str, now: float, error: Optional[str] = None) -> None:
        if self.done:
            return
        self.status = status
        self.completed_at = now
        self.error = error
        for callback in self._callbacks:
            callback(self)
        self._callbacks.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PendingOp {self.kind}({self.key!r}) {self.status}"
            f" acks={len(self.acks)} replies={self.replies}>"
        )


class DataFlasksClient(Node):
    """Client node implementing the ``put``/``get`` API.

    :param load_balancer: strategy choosing a contact node per request.
    :param timeout: simulated seconds before a retry (or failure).
    :param retries: additional attempts after the first.
    """

    def __init__(
        self,
        node_id: int,
        ctx: SimContext,
        load_balancer: LoadBalancer,
        config: Optional[DataFlasksConfig] = None,
        timeout: float = 5.0,
        retries: int = 2,
    ) -> None:
        super().__init__(node_id, ctx)
        self.load_balancer = load_balancer
        self.config = config or DataFlasksConfig()
        self.timeout = timeout
        self.retries = retries
        self._next_seq = 0
        self._pending: Dict[ReqId, PendingOp] = {}
        self._contact_of_attempt: Dict[ReqId, int] = {}
        self.register_handler(PutAck, self._on_put_ack)
        self.register_handler(GetReply, self._on_get_reply)

    # ----------------------------------------------------------------- API

    def put(self, key: str, value: Any, version: int, acks_required: int = 1) -> PendingOp:
        """Store ``value`` under ``(key, version)``.

        Completes once ``acks_required`` distinct target-slice nodes have
        acknowledged. Versions must come totally ordered from the caller
        (the DATADROPLETS contract).
        """
        if not self.alive:
            raise ClientError("client is not started")
        op = self._new_op(PUT, key, version, acks_required)
        op.value_to_put = value
        self._dispatch(op)
        return op

    def get(self, key: str, version: Optional[int] = None) -> PendingOp:
        """Fetch ``key`` at ``version`` (``None`` = latest available)."""
        if not self.alive:
            raise ClientError("client is not started")
        op = self._new_op(GET, key, version, acks_required=1)
        self._dispatch(op)
        return op

    @property
    def pending_ops(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------ dispatch

    def _new_op(self, kind: str, key: str, version: Optional[int], acks_required: int) -> PendingOp:
        req_id = (self.id, self._next_seq)
        self._next_seq += 1
        op = PendingOp(kind, key, version, req_id, acks_required, self.now)
        self._pending[req_id] = op
        return op

    def _request_message(self, op: PendingOp):
        if op.kind == PUT:
            assert op.version is not None
            return PutRequest(
                key=op.key,
                version=op.version,
                value=op.value_to_put,
                req_id=op.req_id,
                attempt=op.attempts,
                client_id=self.id,
                ttl=self.config.ttl,
            )
        return GetRequest(
            key=op.key,
            version=op.version,
            req_id=op.req_id,
            attempt=op.attempts,
            client_id=self.id,
            ttl=self.config.ttl,
        )

    def _dispatch(self, op: PendingOp) -> None:
        contact = self.load_balancer.pick(op.key, self.config.num_slices)
        if contact is None:
            self.metrics.inc(f"client.{op.kind}.no_contact")
            op._complete(FAILED, self.now, error="no contact node available")
            self._pending.pop(op.req_id, None)
            return
        self._contact_of_attempt[op.req_id] = contact
        self.send(contact, self._request_message(op))
        self.after(self.timeout, self._on_timeout, op.req_id, op.attempts)

    def _on_timeout(self, req_id: ReqId, attempt: int) -> None:
        op = self._pending.get(req_id)
        if op is None or op.done or op.attempts != attempt:
            return
        contact = self._contact_of_attempt.get(req_id)
        if contact is not None:
            self.load_balancer.note_failure(contact)
        if op.attempts > self.retries:
            self.metrics.inc(f"client.{op.kind}.timeout")
            op._complete(FAILED, self.now, error=f"timed out after {op.attempts} attempts")
            self._pending.pop(req_id, None)
            return
        op.attempts += 1
        self.metrics.inc(f"client.{op.kind}.retry")
        self._dispatch(op)

    # -------------------------------------------------------------- replies

    def _on_put_ack(self, msg: PutAck, src: int) -> None:
        op = self._pending.get(msg.req_id)
        self.load_balancer.note_responder(src, msg.responder_slice)
        if op is None or op.done:
            self.metrics.inc("client.duplicate_reply")
            return
        op.replies += 1
        if src in op.acks:
            op.duplicate_replies += 1
            return
        op.acks.add(src)
        if len(op.acks) >= op.acks_required:
            self.metrics.inc("client.put.ok")
            self.metrics.observe("client.put.latency", self.now - op.started_at)
            op._complete(SUCCEEDED, self.now)
            self._pending.pop(msg.req_id, None)

    def _on_get_reply(self, msg: GetReply, src: int) -> None:
        op = self._pending.get(msg.req_id)
        self.load_balancer.note_responder(src, msg.responder_slice)
        if op is None or op.done:
            self.metrics.inc("client.duplicate_reply")
            return
        op.replies += 1
        if not msg.found:
            return
        op.value = msg.value
        op.result_version = msg.version
        self.metrics.inc("client.get.ok")
        self.metrics.observe("client.get.latency", self.now - op.started_at)
        op._complete(SUCCEEDED, self.now)
        self._pending.pop(msg.req_id, None)

"""Autonomous replication management (paper Section IV-C, implemented).

"Recent slicing protocols allow for dynamic configuration of the slicing
mechanism. This opens the door to autonomous mechanisms for replication
management. Note that, for the same system size, a smaller number of
slices increases the replication factor but lowers system capacity. [...]
we believe that this opens important research paths for future work."

This module walks that path: :class:`ReplicationManager` keeps the
replication factor (≈ slice size ``N / k``) near a target *with no
coordinator*. Each node:

1. reads the decentralised system-size estimate from
   :class:`~repro.gossip.aggregation.SystemSizeEstimator`,
2. computes the ideal slice count ``k* = N / target_replication``,
3. quantises ``k`` to powers of two — nodes whose estimates differ by a
   few percent still agree on the same ``k``, because agreement only
   needs them to land in the same octave,
4. applies hysteresis (a dead-band around octave boundaries plus a
   stability streak) so the system does not flap between two ``k``
   values when the size estimate hovers at a boundary, and
5. reconfigures its Slice Manager; the anti-entropy service's
   *re-homing* then migrates objects whose key maps to a different slice
   under the new ``k``.

During a transition different nodes may briefly run different ``k``.
The substrate tolerates this: any holder answers reads, writes flood
until some responsible node stores them, and re-homing converges the
placement once every node has switched.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.config import DataFlasksConfig
from repro.errors import ConfigurationError
from repro.gossip.aggregation import SystemSizeEstimator
from repro.sim.node import Service
from repro.slicing.base import SlicingService

__all__ = ["ReplicationManager", "quantize_slices"]


def quantize_slices(ideal: float, min_slices: int = 1, max_slices: int = 4096) -> int:
    """Snap an ideal slice count to the nearest power of two, clamped."""
    if ideal <= min_slices:
        return min_slices
    exponent = round(math.log2(ideal))
    return max(min_slices, min(max_slices, 2 ** exponent))


class ReplicationManager(Service):
    """Keeps ``k`` tracking ``N / target_replication`` autonomously.

    :param target_replication: desired slice size (replication factor).
    :param period: seconds between control decisions (slow by design —
        reconfiguration costs state transfer).
    :param boundary_margin: fraction of an octave the size estimate must
        clear beyond a boundary before switching (hysteresis dead-band).
    :param stability_checks: consecutive periods the new ``k`` must be
        proposed before it is applied.
    """

    name = "replication-manager"

    def __init__(
        self,
        config: DataFlasksConfig,
        target_replication: int = 10,
        period: float = 10.0,
        min_slices: int = 1,
        max_slices: int = 4096,
        boundary_margin: float = 0.15,
        stability_checks: int = 2,
    ) -> None:
        super().__init__()
        if target_replication <= 0:
            raise ConfigurationError("target_replication must be positive")
        if not 0 <= boundary_margin < 0.5:
            raise ConfigurationError("boundary_margin must be in [0, 0.5)")
        if stability_checks <= 0 or period <= 0:
            raise ConfigurationError("stability_checks and period must be positive")
        self.config = config
        self.target_replication = target_replication
        self.period = period
        self.min_slices = min_slices
        self.max_slices = max_slices
        self.boundary_margin = boundary_margin
        self.stability_checks = stability_checks
        self.reconfigurations = 0
        self._candidate: Optional[int] = None
        self._candidate_streak = 0

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        node = self.node
        assert node is not None
        node.every(self.period, self._decide)

    # ------------------------------------------------------------- control

    def _size_estimate(self) -> Optional[float]:
        node = self.node
        assert node is not None
        estimator = node.get_service(SystemSizeEstimator)
        if estimator is None:
            return None
        return estimator.size()

    def desired_slices(self, size: float) -> int:
        """The quantised slice count for a given system size."""
        return quantize_slices(
            size / self.target_replication, self.min_slices, self.max_slices
        )

    def _clears_margin(self, size: float, proposed: int) -> bool:
        """Hysteresis: is the estimate comfortably inside ``proposed``'s
        octave, measured in log2 space against the boundary shared with
        the current ``k``?"""
        current = self.config.num_slices
        ideal_log = math.log2(max(1.0, size / self.target_replication))
        if proposed > current:
            boundary = math.log2(proposed) - 0.5
            return ideal_log >= boundary + self.boundary_margin
        boundary = math.log2(proposed) + 0.5
        return ideal_log <= boundary - self.boundary_margin

    def _decide(self) -> None:
        node = self.node
        assert node is not None
        size = self._size_estimate()
        if size is None:
            return
        proposed = self.desired_slices(size)
        if proposed == self.config.num_slices:
            self._candidate = None
            self._candidate_streak = 0
            return
        if not self._clears_margin(size, proposed):
            self._candidate = None
            self._candidate_streak = 0
            return
        if proposed == self._candidate:
            self._candidate_streak += 1
        else:
            self._candidate = proposed
            self._candidate_streak = 1
        if self._candidate_streak >= self.stability_checks:
            self._apply(proposed)
            self._candidate = None
            self._candidate_streak = 0

    def _apply(self, new_k: int) -> None:
        """Reconfigure this node's slice count.

        The config object is node-local (each node owns a copy), so the
        handler, anti-entropy and keyspace mapping all see the new ``k``
        immediately; re-homing migrates any now-foreign objects.
        """
        node = self.node
        assert node is not None
        self.config.num_slices = new_k
        slicing = node.get_service(SlicingService)
        if slicing is not None:
            slicing.set_num_slices(new_k)
        antientropy = getattr(node, "antientropy", None)
        if antientropy is not None:
            antientropy.reset_rehoming()
        self.reconfigurations += 1
        node.metrics.inc("df.autoslice.reconfigured")

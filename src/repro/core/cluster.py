"""Deployment facade: build and drive a whole DATAFLASKS cluster.

:class:`DataFlasksCluster` is the high-level entry point the examples,
tests and benches use: it creates ``n`` server nodes inside a
:class:`~repro.sim.simulator.Simulation`, bootstraps the overlay, waits
for slicing to converge, hands out clients wired to a chosen Load
Balancer strategy, and offers synchronous ``put``/``get`` helpers that
advance virtual time until an operation completes.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.client import DataFlasksClient, PendingOp
from repro.core.config import DataFlasksConfig
from repro.core.keyspace import slice_for_key
from repro.core.loadbalancer import (
    LoadBalancer,
    RandomLoadBalancer,
    RoundRobinLoadBalancer,
    SliceAwareLoadBalancer,
)
from repro.core.node import DataFlasksNode
from repro.core.store import VersionedStore
from repro.errors import ConfigurationError, OperationTimeoutError
from repro.pss.bootstrap import bootstrap_random_views
from repro.sim.node import Node, SimContext
from repro.sim.simulator import Simulation
from repro.slicing.metrics import slice_histogram, unassigned_fraction

__all__ = ["DataFlasksCluster"]

LB_STRATEGIES = {
    "random": RandomLoadBalancer,
    "round-robin": RoundRobinLoadBalancer,
    "slice-aware": SliceAwareLoadBalancer,
}

StoreFactory = Callable[[int], VersionedStore]
AttributeFn = Callable[[int, random.Random], float]


class DataFlasksCluster:
    """A DATAFLASKS deployment plus its clients.

    :param sim: the simulation to deploy into (created if omitted).
    :param n: number of server nodes.
    :param config: per-node configuration; ``expected_n`` is re-targeted
        to ``n`` automatically so the dissemination fanout is sized right.
    :param attribute_fn: per-node slicing attribute (storage capacity);
        defaults to a uniform random capacity in [100, 1000).
    :param store_factory: optional per-node Data Store constructor.
    """

    def __init__(
        self,
        n: int,
        config: Optional[DataFlasksConfig] = None,
        sim: Optional[Simulation] = None,
        seed: int = 0,
        attribute_fn: Optional[AttributeFn] = None,
        store_factory: Optional[StoreFactory] = None,
        bootstrap_degree: int = 8,
    ) -> None:
        if n <= 0:
            raise ConfigurationError("cluster size must be positive")
        self.sim = sim if sim is not None else Simulation(seed=seed)
        base = config or DataFlasksConfig()
        self.config = base.scaled_to(n)
        self._attribute_fn = attribute_fn or (lambda nid, rng: rng.uniform(100.0, 1000.0))
        self._store_factory = store_factory
        self._attr_rng = self.sim.rng_registry.stream("cluster.attributes")
        self.servers: List[DataFlasksNode] = []
        self.clients: List[DataFlasksClient] = []
        for _ in range(n):
            self.servers.append(self._build_server())
        bootstrap_random_views(
            self.servers,
            degree=min(bootstrap_degree, max(1, n - 1)),
            rng=self.sim.rng_registry.stream("cluster.bootstrap"),
        )
        for server in self.servers:
            server.start()

    # ------------------------------------------------------------- builders

    def _build_server(self) -> DataFlasksNode:
        def factory(node_id: int, ctx: SimContext) -> Node:
            store = self._store_factory(node_id) if self._store_factory else None
            return DataFlasksNode(
                node_id,
                ctx,
                config=self.config,
                attribute=self._attribute_fn(node_id, self._attr_rng),
                store=store,
            )

        node = self.sim.add_node(factory)
        assert isinstance(node, DataFlasksNode)
        return node

    def server_factory(self) -> Callable[[int, SimContext], Node]:
        """A node factory for churn controllers; joiners are tracked."""

        def factory(node_id: int, ctx: SimContext) -> Node:
            store = self._store_factory(node_id) if self._store_factory else None
            node = DataFlasksNode(
                node_id,
                ctx,
                config=self.config,
                attribute=self._attribute_fn(node_id, self._attr_rng),
                store=store,
            )
            self.servers.append(node)
            return node

        return factory

    def directory(self) -> List[int]:
        """Alive server ids — what the Load Balancer service exposes."""
        return [s.id for s in self.servers if s.alive]

    def churn_controller(self, **kwargs):
        """A ChurnController scoped to this cluster's *servers*.

        Clients co-simulated in the same network are never churn victims;
        they model the measurement harness, not member machines.
        """
        from repro.churn.controller import ChurnController

        return ChurnController(
            self.sim,
            self.server_factory(),
            eligible=lambda: [s for s in self.servers if s.alive],
            **kwargs,
        )

    def new_client(
        self,
        lb_strategy: str = "random",
        timeout: float = 5.0,
        retries: int = 2,
    ) -> DataFlasksClient:
        """Create and start a client using the named Load Balancer."""
        try:
            lb_cls = LB_STRATEGIES[lb_strategy]
        except KeyError:
            raise ConfigurationError(
                f"unknown load balancer {lb_strategy!r}; "
                f"choose from {sorted(LB_STRATEGIES)}"
            ) from None
        lb: LoadBalancer = lb_cls(
            self.directory, self.sim.rng_registry.stream(f"lb.{len(self.clients)}")
        )

        def factory(node_id: int, ctx: SimContext) -> Node:
            return DataFlasksClient(
                node_id, ctx, lb, config=self.config, timeout=timeout, retries=retries
            )

        client = self.sim.add_node(factory)
        assert isinstance(client, DataFlasksClient)
        client.start()
        self.clients.append(client)
        return client

    # ---------------------------------------------------------- convergence

    def warm_up(self, duration: float = 10.0) -> None:
        """Let the PSS mix before measuring anything."""
        self.sim.run_for(duration)

    def wait_for_slices(self, timeout: float = 60.0) -> bool:
        """Run until every alive server has a slice and no slice is empty."""

        def converged() -> bool:
            alive = [s for s in self.servers if s.alive]
            if not alive:
                return False
            if unassigned_fraction(alive) > 0:
                return False
            hist = slice_histogram(alive)
            return all(hist.get(i, 0) > 0 for i in range(self.config.num_slices))

        return self.sim.run_until_condition(converged, timeout)

    # ------------------------------------------------------------- sync ops

    def run_op(self, op: PendingOp, timeout: float = 30.0) -> PendingOp:
        """Advance virtual time until ``op`` completes."""
        self.sim.run_until_condition(lambda: op.done, timeout, check_interval=0.1)
        if not op.done:
            raise OperationTimeoutError(op.kind, op.key, timeout)
        return op

    def put_sync(
        self,
        client: DataFlasksClient,
        key: str,
        value: Any,
        version: int,
        acks_required: int = 1,
        timeout: float = 30.0,
    ) -> PendingOp:
        return self.run_op(client.put(key, value, version, acks_required), timeout)

    def get_sync(
        self,
        client: DataFlasksClient,
        key: str,
        version: Optional[int] = None,
        timeout: float = 30.0,
    ) -> PendingOp:
        return self.run_op(client.get(key, version), timeout)

    def load(
        self,
        client: DataFlasksClient,
        items: Iterable[Tuple[str, Any, int]],
        acks_required: int = 1,
        op_timeout: float = 30.0,
    ) -> List[PendingOp]:
        """Sequentially put a batch of ``(key, value, version)`` items."""
        results = []
        for key, value, version in items:
            op = client.put(key, value, version, acks_required)
            self.sim.run_until_condition(lambda: op.done, op_timeout, check_interval=0.1)
            results.append(op)
        return results

    # --------------------------------------------------------------- health

    def replication_level(self, key: str, version: Optional[int] = None) -> int:
        """How many alive servers hold the object right now."""
        return sum(1 for s in self.servers if s.alive and s.holds(key, version))

    def slice_population(self) -> Dict[int, int]:
        """slice -> number of alive servers claiming it."""
        return slice_histogram([s for s in self.servers if s.alive])

    def target_slice(self, key: str) -> int:
        return slice_for_key(key, self.config.num_slices)

    def server_message_load(self) -> Dict[str, float]:
        """Mean messages sent/received per *server* node — the paper's
        Figures 3/4 metric (clients excluded)."""
        return self.sim.metrics.message_load(population=[s.id for s in self.servers])

    def alive_servers(self) -> List[DataFlasksNode]:
        return [s for s in self.servers if s.alive]

"""DATAFLASKS core — the paper's contribution.

The node (Figure 2's four services), the versioned Data Store, the
client library with reply deduplication, load-balancer strategies, and
the cluster facade.
"""

from repro.core.autoslice import ReplicationManager, quantize_slices
from repro.core.client import DataFlasksClient, PendingOp
from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig
from repro.core.filestore import FileStore
from repro.core.handler import RequestHandler
from repro.core.keyspace import key_hash, slice_for_key
from repro.core.loadbalancer import (
    LoadBalancer,
    RandomLoadBalancer,
    RoundRobinLoadBalancer,
    SliceAwareLoadBalancer,
)
from repro.core.messages import (
    GetReply,
    GetRequest,
    PutAck,
    PutRequest,
    SliceAdvert,
    SyncDigest,
    SyncItems,
    SyncResponse,
)
from repro.core.node import DataFlasksNode, make_slicing_service
from repro.core.replication import AntiEntropyService
from repro.core.sliceview import SliceViewService
from repro.core.store import MemoryStore, StoredObject, VersionedStore

__all__ = [
    "AntiEntropyService",
    "ReplicationManager",
    "quantize_slices",
    "DataFlasksClient",
    "DataFlasksCluster",
    "DataFlasksConfig",
    "DataFlasksNode",
    "FileStore",
    "GetReply",
    "GetRequest",
    "LoadBalancer",
    "MemoryStore",
    "PendingOp",
    "PutAck",
    "PutRequest",
    "RandomLoadBalancer",
    "RequestHandler",
    "RoundRobinLoadBalancer",
    "SliceAdvert",
    "SliceAwareLoadBalancer",
    "SliceViewService",
    "StoredObject",
    "SyncDigest",
    "SyncItems",
    "SyncResponse",
    "VersionedStore",
    "key_hash",
    "make_slicing_service",
    "slice_for_key",
]

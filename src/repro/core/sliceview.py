"""Intra-slice peer sampling.

Section IV-B: "Following the ideas described in [17], we consider a Peer
Sampling Service intra-slice. Once a request reaches a node in its target
slice, dissemination is done only to nodes of that slice."

The :class:`SliceViewService` maintains that intra-slice view: each round
a node advertises ``(my slice, me + sample of my slice view)`` to a few
random *global* PSS peers and to a couple of known slice-mates. Receivers
that believe they are in the advertised slice merge the entries. Ages
bound how long departed or re-sliced nodes linger; changing slice resets
the view.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.messages import SliceAdvert
from repro.pss.base import PeerSamplingService
from repro.pss.view import NodeDescriptor, PartialView
from repro.sim.node import Service
from repro.slicing.base import SlicingService

__all__ = ["SliceViewService"]


class SliceViewService(Service):
    """Continuously discovered membership of the node's own slice."""

    name = "slice-view"

    def __init__(
        self,
        view_size: int = 16,
        period: float = 1.0,
        advert_fanout: int = 3,
        max_age: int = 10,
    ) -> None:
        super().__init__()
        self.view = PartialView(view_size)
        self.period = period
        self.advert_fanout = advert_fanout
        self.max_age = max_age

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        node = self.node
        assert node is not None
        node.register_handler(SliceAdvert, self._on_advert)
        node.every(self.period, self._round)
        slicing = node.get_service(SlicingService)
        if slicing is not None:
            slicing.on_slice_change(self._on_slice_change)

    def stop(self) -> None:
        node = self.node
        assert node is not None
        node.unregister_handler(SliceAdvert)

    # -------------------------------------------------------------- queries

    def _my_slice(self) -> Optional[int]:
        node = self.node
        assert node is not None
        slicing = node.get_service(SlicingService)
        if slicing is None:
            return None
        return slicing.my_slice()

    def slice_peers(self) -> List[int]:
        """Known alive-ish members of my slice (never includes self)."""
        return self.view.ids()

    def sample(self, count: int) -> List[int]:
        node = self.node
        assert node is not None
        return self.view.sample_ids(node.rng, count)

    def random_peer(self) -> Optional[int]:
        node = self.node
        assert node is not None
        return self.view.random_id(node.rng)

    # --------------------------------------------------------------- rounds

    def _round(self) -> None:
        node = self.node
        assert node is not None
        my_slice = self._my_slice()
        if my_slice is None:
            return
        self.view.increase_ages()
        for descriptor in self.view.descriptors():
            if descriptor.age > self.max_age:
                self.view.remove(descriptor.node_id)
        members: Tuple[Tuple[int, int], ...] = tuple(
            [(node.id, 0)]
            + [(d.node_id, d.age) for d in self.view.sample_descriptors(node.rng, 3)]
        )
        advert = SliceAdvert(my_slice, members)
        pss = node.get_service(PeerSamplingService)
        targets: List[int] = []
        if pss is not None:
            targets.extend(pss.sample(self.advert_fanout))
        # Also gossip directly with slice-mates so the slice's membership
        # knowledge mixes transitively.
        targets.extend(self.sample(2))
        for target in dict.fromkeys(targets):  # dedupe, keep order
            node.send(target, advert)

    def _on_advert(self, msg: SliceAdvert, src: int) -> None:
        node = self.node
        assert node is not None
        if msg.slice_id != self._my_slice():
            return
        for node_id, age in msg.members:
            if node_id != node.id:
                self.view.add(NodeDescriptor(node_id, age))

    def _on_slice_change(self, old: int, new: int) -> None:
        """Joining a new slice: stale intra-slice contacts are useless."""
        self.view = PartialView(self.view.capacity)

"""Wire messages of the DATAFLASKS protocol.

All messages are immutable dataclasses. Identifiers:

* ``req_id = (client_id, seq)`` — the *logical* operation id; the client
  library deduplicates the multiple replies epidemic dissemination
  produces by this id (paper Section V: "read requests carry a request
  identifier in order to distinguish multiple read requests").
* ``msg_id = (client_id, seq, attempt)`` — the *dissemination* id; server
  nodes deduplicate forwarded copies by it, so a client retry (new
  attempt) is re-disseminated while duplicates of one attempt die out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

__all__ = [
    "ReqId",
    "MsgId",
    "PutRequest",
    "PutAck",
    "GetRequest",
    "GetReply",
    "SliceAdvert",
    "SyncDigest",
    "SyncResponse",
    "SyncItems",
]

ReqId = Tuple[int, int]
MsgId = Tuple[int, int, int]


@dataclass(frozen=True)
class PutRequest:
    """Store ``value`` under ``(key, version)``; epidemic-routed.

    ``client_id`` is the node id the ack must go to; ``ttl`` bounds
    forwarding hops.
    """

    key: str
    version: int
    value: Any
    req_id: ReqId
    attempt: int
    client_id: int
    ttl: int

    @property
    def msg_id(self) -> MsgId:
        return (self.req_id[0], self.req_id[1], self.attempt)


@dataclass(frozen=True)
class PutAck:
    """A target-slice node confirms it stored (or already had) the object.

    ``responder_slice`` feeds the client's slice-aware load balancer
    (the Section VII optimisation).
    """

    key: str
    version: int
    req_id: ReqId
    responder_slice: Optional[int]


@dataclass(frozen=True)
class GetRequest:
    """Fetch ``key`` at ``version`` (``None`` = latest); epidemic-routed."""

    key: str
    version: Optional[int]
    req_id: ReqId
    attempt: int
    client_id: int
    ttl: int

    @property
    def msg_id(self) -> MsgId:
        return (self.req_id[0], self.req_id[1], self.attempt)


@dataclass(frozen=True)
class GetReply:
    """Answer to a :class:`GetRequest` from a node holding the object."""

    key: str
    version: Optional[int]
    value: Any
    found: bool
    req_id: ReqId
    responder_slice: Optional[int]


@dataclass(frozen=True)
class SliceAdvert:
    """Intra-slice membership gossip.

    A node advertises that the listed node ids believe they are in
    ``slice_id`` (itself plus a sample of its slice view); receivers in
    the same slice merge the entries into their slice view.
    """

    slice_id: int
    members: Tuple[Tuple[int, int], ...]  # (node_id, age) pairs


@dataclass(frozen=True)
class SyncDigest:
    """Anti-entropy round opener: the initiator's (key, version) digest."""

    slice_id: int
    digest: frozenset  # frozenset[(key, version)]


@dataclass(frozen=True)
class SyncResponse:
    """Responder's answer: items the initiator misses + entries it wants."""

    slice_id: int
    push: Tuple[Tuple[str, int, Any], ...]  # items the initiator lacks
    pull: Tuple[Tuple[str, int], ...]  # entries the responder lacks


@dataclass(frozen=True)
class SyncItems:
    """Final anti-entropy leg: the items the responder asked to pull."""

    slice_id: int
    items: Tuple[Tuple[str, int, Any], ...]

"""The DATAFLASKS node: four services on one process (Figure 2).

``DataFlasksNode`` wires together exactly the architecture the paper
draws: a Peer Sampling Service (Cyclon), a Slice Manager (DSlead by
default), the Request Handler in front of the Data Store, plus the
intra-slice view and anti-entropy replication the design relies on.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.autoslice import ReplicationManager
from repro.core.config import DataFlasksConfig
from repro.core.handler import RequestHandler
from repro.core.replication import AntiEntropyService
from repro.core.sliceview import SliceViewService
from repro.core.store import MemoryStore, VersionedStore
from repro.errors import ConfigurationError
from repro.gossip.aggregation import SystemSizeEstimator
from repro.pss.cyclon import CyclonService
from repro.sim.node import Node, SimContext
from repro.slicing.base import SlicingService
from repro.slicing.dslead import DSleadSlicing
from repro.slicing.ordered import OrderedSlicing
from repro.slicing.sliver import SliverSlicing
from repro.slicing.static import StaticSlicing

__all__ = ["DataFlasksNode", "make_slicing_service"]


def make_slicing_service(config: DataFlasksConfig, attribute: float) -> SlicingService:
    """Build the Slice Manager named by ``config.slicing_protocol``."""
    if config.slicing_protocol == "dslead":
        return DSleadSlicing(
            num_slices=config.num_slices,
            attribute=attribute,
            period=config.slicing_period,
            sample_size=config.slicing_sample_size,
            reservoir_size=config.slicing_reservoir_size,
            stability_rounds=config.slicing_stability_rounds,
        )
    if config.slicing_protocol == "ordered":
        return OrderedSlicing(
            num_slices=config.num_slices,
            attribute=attribute,
            period=config.slicing_period,
        )
    if config.slicing_protocol == "sliver":
        return SliverSlicing(
            num_slices=config.num_slices,
            attribute=attribute,
            period=config.slicing_period,
            sample_size=config.slicing_sample_size,
        )
    if config.slicing_protocol == "static":
        return StaticSlicing(num_slices=config.num_slices, attribute=attribute)
    raise ConfigurationError(f"unknown slicing protocol {config.slicing_protocol!r}")


class DataFlasksNode(Node):
    """One DATAFLASKS host.

    :param attribute: the locally measured slicing attribute — storage
        capacity in the paper's design. Defaults to the store capacity
        (or the node id as a stable tie-breaking stand-in when storage
        is unbounded).
    :param store: Data Store implementation; in-memory by default, any
        :class:`~repro.core.store.VersionedStore` (e.g.
        :class:`~repro.core.filestore.FileStore`) plugs in.
    """

    def __init__(
        self,
        node_id: int,
        ctx: SimContext,
        config: Optional[DataFlasksConfig] = None,
        attribute: Optional[float] = None,
        store: Optional[VersionedStore] = None,
    ) -> None:
        super().__init__(node_id, ctx)
        # Each node owns a *copy* of the config: autonomous reconfiguration
        # (ReplicationManager changing num_slices) is a node-local decision
        # that must not telepathically update other nodes.
        self.config = dataclasses.replace(config) if config is not None else DataFlasksConfig()
        if attribute is None:
            if self.config.store_capacity is not None:
                attribute = float(self.config.store_capacity)
            else:
                attribute = float(node_id)
        self.attribute = attribute
        self.store = store if store is not None else MemoryStore(self.config.store_capacity)

        self.pss = CyclonService(
            view_size=self.config.view_size,
            shuffle_length=self.config.shuffle_length,
            period=self.config.pss_period,
        )
        self.slicing = make_slicing_service(self.config, attribute)
        self.slice_view = SliceViewService(
            view_size=self.config.slice_view_size,
            period=self.config.slice_advert_period,
            advert_fanout=self.config.slice_advert_fanout,
            max_age=self.config.slice_entry_max_age,
        )
        self.handler = RequestHandler(self.store, self.config)
        self.antientropy = AntiEntropyService(self.store, self.config)

        self.add_service(self.pss)
        self.add_service(self.slicing)
        self.add_service(self.slice_view)
        self.add_service(self.handler)
        self.add_service(self.antientropy)

        if self.config.auto_replication_target is not None:
            self.size_estimator = SystemSizeEstimator()
            self.replication_manager = ReplicationManager(
                self.config,
                target_replication=self.config.auto_replication_target,
                period=self.config.auto_replication_period,
            )
            self.add_service(self.size_estimator)
            self.add_service(self.replication_manager)
        else:
            self.size_estimator = None
            self.replication_manager = None

    # -------------------------------------------------------------- queries

    def my_slice(self) -> Optional[int]:
        """The slice this node currently believes it belongs to."""
        return self.slicing.my_slice()

    def holds(self, key: str, version: Optional[int] = None) -> bool:
        """Whether the local Data Store has the object."""
        return self.store.get(key, version) is not None

    def on_stop(self) -> None:
        self.store.close()

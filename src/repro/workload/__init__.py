"""YCSB-compatible workload generation and execution (paper Section VI).

* :mod:`repro.workload.distributions` — uniform/zipfian/latest/hotspot
  key choosers (Gray et al. sampling, FNV scrambling)
* :mod:`repro.workload.ycsb` — core workloads A–F plus the paper's
  write-only workload
* :class:`~repro.workload.runner.WorkloadRunner` — closed-loop execution
  against a cluster with version assignment
* :class:`~repro.workload.openloop.OpenLoopRunner` — concurrent
  open-loop execution: Poisson/constant arrivals fanned over a client
  pool, bounded in-flight window, warmup/measurement windows
"""

from repro.workload.distributions import (
    HotSpotChooser,
    KeyChooser,
    LatestChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
    fnv64,
)
from repro.workload.openloop import OpenLoopRunner, OpenLoopStats, Window
from repro.workload.runner import ConsistencyObserver, RunStats, WorkloadRunner
from repro.workload.ycsb import (
    INSERT,
    READ,
    RMW,
    SCAN,
    UPDATE,
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
    WORKLOAD_E,
    WORKLOAD_F,
    WRITE_ONLY,
    CoreWorkload,
    Operation,
)

__all__ = [
    "ConsistencyObserver",
    "CoreWorkload",
    "HotSpotChooser",
    "INSERT",
    "KeyChooser",
    "LatestChooser",
    "OpenLoopRunner",
    "OpenLoopStats",
    "Operation",
    "READ",
    "RMW",
    "RunStats",
    "SCAN",
    "ScrambledZipfianChooser",
    "UPDATE",
    "UniformChooser",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_D",
    "WORKLOAD_E",
    "WORKLOAD_F",
    "WRITE_ONLY",
    "Window",
    "WorkloadRunner",
    "ZipfianChooser",
    "fnv64",
]

"""YCSB-style core workload generator.

Reimplements the request-stream shapes of the YCSB benchmark the paper
uses as its client (reference [26]): a *load phase* inserting
``record_count`` items and a *transaction phase* mixing reads, updates,
inserts and read-modify-writes according to per-workload proportions.

Presets match the published YCSB core workloads A–F plus the paper's
evaluation workload (``WRITE_ONLY``, Section VI: "YCSB configured for a
write only workload"). YCSB's scan operation has no equivalent in a
flat key-value API; following the substitution rule it is modelled as a
bounded multi-get over consecutively numbered keys (workload E), which
preserves its load shape (one op touching several records).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.workload.distributions import (
    KeyChooser,
    LatestChooser,
    ScrambledZipfianChooser,
    UniformChooser,
)

__all__ = [
    "Operation",
    "CoreWorkload",
    "READ",
    "UPDATE",
    "INSERT",
    "RMW",
    "SCAN",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "WORKLOAD_D",
    "WORKLOAD_E",
    "WORKLOAD_F",
    "WRITE_ONLY",
]

READ = "read"
UPDATE = "update"
INSERT = "insert"
RMW = "read-modify-write"
SCAN = "scan"


@dataclass(frozen=True)
class Operation:
    """One generated request.

    ``scan_length`` is only set for scans (number of consecutive keys).
    """

    kind: str
    key: str
    value: Optional[bytes] = None
    scan_length: int = 0


@dataclass
class CoreWorkload:
    """A parameterised YCSB-like workload.

    :param record_count: items inserted by the load phase.
    :param read/update/insert/rmw/scan_proportion: op mix (must sum to 1).
    :param request_distribution: ``uniform``, ``zipfian`` or ``latest``.
    :param value_size: payload bytes per record.
    :param key_prefix: keys are ``f"{key_prefix}{index}"``.
    """

    record_count: int = 1000
    read_proportion: float = 0.5
    update_proportion: float = 0.5
    insert_proportion: float = 0.0
    rmw_proportion: float = 0.0
    scan_proportion: float = 0.0
    max_scan_length: int = 10
    request_distribution: str = "zipfian"
    value_size: int = 100
    key_prefix: str = "user"
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.record_count <= 0:
            raise ConfigurationError("record_count must be positive")
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.rmw_proportion
            + self.scan_proportion
        )
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(f"op proportions sum to {total}, expected 1.0")
        if self.request_distribution not in ("uniform", "zipfian", "latest"):
            raise ConfigurationError(
                f"unknown request distribution {self.request_distribution!r}"
            )
        if self.value_size <= 0 or self.max_scan_length <= 0:
            raise ConfigurationError("value_size and max_scan_length must be positive")

    # -------------------------------------------------------------- helpers

    def key_for(self, index: int) -> str:
        return f"{self.key_prefix}{index}"

    def _value(self, rng: random.Random) -> bytes:
        return bytes(rng.getrandbits(8) for _ in range(self.value_size))

    def _chooser(self) -> KeyChooser:
        if self.request_distribution == "uniform":
            return UniformChooser(self.record_count)
        if self.request_distribution == "latest":
            return LatestChooser(self.record_count)
        return ScrambledZipfianChooser(self.record_count)

    def scaled(self, record_count: int) -> "CoreWorkload":
        """The same mix over a different record count."""
        return replace(self, record_count=record_count)

    # ------------------------------------------------------------ load phase

    def load_items(self, rng: random.Random) -> Iterator[Operation]:
        """The insert stream that populates the store."""
        for index in range(self.record_count):
            yield Operation(INSERT, self.key_for(index), self._value(rng))

    # ----------------------------------------------------- transaction phase

    def operations(self, count: int, rng: random.Random) -> Iterator[Operation]:
        """``count`` requests drawn from the configured mix."""
        chooser = self._chooser()
        insert_frontier = self.record_count
        thresholds = self._thresholds()
        for _ in range(count):
            roll = rng.random()
            kind = _pick(thresholds, roll)
            if kind == INSERT:
                key = self.key_for(insert_frontier)
                insert_frontier += 1
                if isinstance(chooser, LatestChooser):
                    chooser.grow()
                yield Operation(INSERT, key, self._value(rng))
            elif kind == READ:
                yield Operation(READ, self.key_for(chooser.next(rng)))
            elif kind == UPDATE:
                yield Operation(UPDATE, self.key_for(chooser.next(rng)), self._value(rng))
            elif kind == RMW:
                yield Operation(RMW, self.key_for(chooser.next(rng)), self._value(rng))
            else:  # SCAN
                start = chooser.next(rng)
                length = rng.randint(1, self.max_scan_length)
                yield Operation(SCAN, self.key_for(start), scan_length=length)

    def _thresholds(self) -> List[tuple]:
        thresholds = []
        cumulative = 0.0
        for kind, proportion in (
            (READ, self.read_proportion),
            (UPDATE, self.update_proportion),
            (INSERT, self.insert_proportion),
            (RMW, self.rmw_proportion),
            (SCAN, self.scan_proportion),
        ):
            if proportion > 0:
                cumulative += proportion
                thresholds.append((cumulative, kind))
        return thresholds


def _pick(thresholds: List[tuple], roll: float) -> str:
    for threshold, kind in thresholds:
        if roll <= threshold:
            return kind
    return thresholds[-1][1]


WORKLOAD_A = CoreWorkload(
    read_proportion=0.5, update_proportion=0.5, name="ycsb-a"
)
WORKLOAD_B = CoreWorkload(
    read_proportion=0.95, update_proportion=0.05, name="ycsb-b"
)
WORKLOAD_C = CoreWorkload(
    read_proportion=1.0, update_proportion=0.0, name="ycsb-c"
)
WORKLOAD_D = CoreWorkload(
    read_proportion=0.95,
    update_proportion=0.0,
    insert_proportion=0.05,
    request_distribution="latest",
    name="ycsb-d",
)
WORKLOAD_E = CoreWorkload(
    read_proportion=0.0,
    update_proportion=0.0,
    insert_proportion=0.05,
    scan_proportion=0.95,
    request_distribution="zipfian",
    name="ycsb-e",
)
WORKLOAD_F = CoreWorkload(
    read_proportion=0.5,
    update_proportion=0.0,
    rmw_proportion=0.5,
    name="ycsb-f",
)
WRITE_ONLY = CoreWorkload(
    read_proportion=0.0,
    update_proportion=0.0,
    insert_proportion=1.0,
    request_distribution="uniform",
    name="write-only",
)

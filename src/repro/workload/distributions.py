"""Key-choice distributions, YCSB-compatible.

The paper drives DATAFLASKS with the YCSB cloud-serving benchmark [26].
YCSB's request distributions are reimplemented here from the original
Cooper et al. description (and the Gray et al. zipfian sampling
algorithm): uniform, zipfian, scrambled zipfian, latest, and hotspot.

All choosers return an *item index* in ``[0, item_count)``; the workload
layer maps indexes to keys.
"""

from __future__ import annotations

import math
import random

from repro.errors import ConfigurationError

__all__ = [
    "KeyChooser",
    "UniformChooser",
    "ZipfianChooser",
    "ScrambledZipfianChooser",
    "LatestChooser",
    "HotSpotChooser",
    "fnv64",
]

FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3


def fnv64(value: int) -> int:
    """FNV-1a over the 8 little-endian bytes of ``value`` (YCSB's hash)."""
    digest = FNV_OFFSET
    for _ in range(8):
        octet = value & 0xFF
        digest ^= octet
        digest = (digest * FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return digest


class KeyChooser:
    """Strategy returning a random item index per request."""

    def __init__(self, item_count: int) -> None:
        if item_count <= 0:
            raise ConfigurationError("item_count must be positive")
        self.item_count = item_count

    def next(self, rng: random.Random) -> int:
        raise NotImplementedError


class UniformChooser(KeyChooser):
    """Every item equally likely."""

    def next(self, rng: random.Random) -> int:
        return rng.randrange(self.item_count)


class ZipfianChooser(KeyChooser):
    """Zipfian popularity: item 0 hottest (Gray et al. algorithm).

    :param theta: skew (YCSB default 0.99; higher = more skew).
    """

    def __init__(self, item_count: int, theta: float = 0.99) -> None:
        super().__init__(item_count)
        if not 0 < theta < 1:
            raise ConfigurationError("theta must be in (0, 1)")
        self.theta = theta
        self._zeta_n = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / item_count) ** (1 - theta)) / (
            1 - self._zeta2 / self._zeta_n
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self._zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.item_count * (self._eta * u - self._eta + 1) ** self._alpha)


class ScrambledZipfianChooser(KeyChooser):
    """Zipfian popularity *profile* spread uniformly over the key space.

    The hot items are scattered by FNV hashing, so popularity skew does
    not correlate with key locality — YCSB's default request chooser.
    """

    def __init__(self, item_count: int, theta: float = 0.99) -> None:
        super().__init__(item_count)
        self._zipf = ZipfianChooser(item_count, theta)

    def next(self, rng: random.Random) -> int:
        return fnv64(self._zipf.next(rng)) % self.item_count


class LatestChooser(KeyChooser):
    """Recently inserted items are hottest (YCSB workload D).

    ``item_count`` tracks the insertion frontier: call :meth:`grow` when
    an insert lands so new items immediately become the hot set.
    """

    def __init__(self, item_count: int, theta: float = 0.99) -> None:
        super().__init__(item_count)
        self.theta = theta
        self._zipf = ZipfianChooser(item_count, theta)

    def grow(self) -> None:
        """Record one insert: the newest item joins at rank 0."""
        self.item_count += 1
        self._zipf = ZipfianChooser(self.item_count, self.theta)

    def next(self, rng: random.Random) -> int:
        # Rank r over the zipfian maps to the r-th *newest* item.
        rank = self._zipf.next(rng)
        return max(0, self.item_count - 1 - rank)


class HotSpotChooser(KeyChooser):
    """A hot fraction of items receives a hot fraction of requests."""

    def __init__(self, item_count: int, hot_fraction: float = 0.2, hot_op_fraction: float = 0.8) -> None:
        super().__init__(item_count)
        if not 0 < hot_fraction <= 1 or not 0 <= hot_op_fraction <= 1:
            raise ConfigurationError("fractions must be in (0,1] / [0,1]")
        self.hot_items = max(1, int(item_count * hot_fraction))
        self.hot_op_fraction = hot_op_fraction

    def next(self, rng: random.Random) -> int:
        if rng.random() < self.hot_op_fraction:
            return rng.randrange(self.hot_items)
        if self.hot_items >= self.item_count:
            return rng.randrange(self.item_count)
        return rng.randrange(self.hot_items, self.item_count)

"""Closed-loop workload runner and shared consistency accounting.

Drives a :class:`~repro.workload.ycsb.CoreWorkload` against any storage
stack through one client, assigning the totally ordered versions the
DATADROPLETS layer would
(inserts start at version 1, each update bumps the key's version), and
collects the statistics the benches report: success rates, latency
percentiles, and — the paper's metric — messages per server node
(the run's message delta divided by the alive-server count).

The version oracle and the consistency bookkeeping live in
:class:`ConsistencyObserver` so the concurrent open-loop engine
(:mod:`repro.workload.openloop`) can share one observer with the load
phase: the observer knows the highest version each key was
*acknowledged* at, so it detects **stale reads** (a successful read
returning an older version), tracks per-key **unavailability windows**
(first failed read until the next successful one) in an
:class:`~repro.sim.metrics.AvailabilityTracker`, and exposes
:attr:`ConsistencyObserver.acked_versions` for the server-side
lost-update audit (:func:`repro.analysis.consistency.count_write_losses`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.metrics import AvailabilityTracker, mean, percentile
from repro.workload.ycsb import INSERT, READ, RMW, SCAN, UPDATE, CoreWorkload, Operation

__all__ = ["ConsistencyObserver", "RunStats", "WorkloadRunner"]

# Distinguishes "caller took no snapshot" (closed loop) from "snapshot
# taken, nothing acked yet" (open loop, expected=None): the two must
# not conflate, or a write acked while a never-acked key's read is in
# flight would retroactively make that read look stale.
_NO_SNAPSHOT = object()


def server_message_total(cluster) -> float:
    """Total messages handled across all servers — inverts the per-node
    mean ``server_message_load`` reports (which averages over every
    server ever deployed)."""
    return cluster.server_message_load()["handled"] * len(cluster.servers)


def messages_per_alive_node(cluster, start_total: float) -> float:
    """The paper's per-node metric for one measurement span: the
    server-side message delta since ``start_total``, divided by the
    servers actually alive to share the load (crashed nodes must not
    dilute the mean)."""
    alive = sum(1 for s in cluster.servers if s.alive)
    return (server_message_total(cluster) - start_total) / max(1, alive)


def scan_range(workload: CoreWorkload, op: Operation):
    """``(base_index, end_index)`` of the keys a scan actually covers.

    Empty (``end <= base``) when the scan starts at/after
    ``record_count`` or has zero length — both drive modes record such
    a scan as not issued rather than a zero-get "success"."""
    base_index = _key_index(op.key, workload.key_prefix)
    return base_index, min(base_index + op.scan_length, workload.record_count)


class ConsistencyObserver:
    """The version oracle plus the consistency observations it enables.

    One observer spans a whole experiment (load phase and transaction
    phase, closed- or open-loop): versions are assigned at *issue* time
    so they stay totally ordered, but acknowledgements are recorded at
    *completion* time — with interleaved in-flight writes, a write must
    not count as acknowledged before its acks actually arrived, or
    concurrent reads would be misclassified as stale.
    """

    def __init__(self) -> None:
        # The version oracle the upper layer (DATADROPLETS) provides.
        self._versions: Dict[str, int] = {}
        # Highest version each key was acknowledged at — what a correct
        # system must still be able to serve.
        self._acked: Dict[str, int] = {}
        self.availability = AvailabilityTracker()
        # Running stale-read total across every driver sharing this
        # observer — the timeline recorder reads it per probe window
        # (per-phase splits stay in each driver's RunStats).
        self.stale_reads = 0

    @property
    def acked_versions(self) -> Dict[str, int]:
        """key -> highest acknowledged version (a copy)."""
        return dict(self._acked)

    @property
    def versions(self) -> Dict[str, int]:
        """key -> highest version assigned so far (a copy)."""
        return dict(self._versions)

    def seed_versions(self, versions: Dict[str, int]) -> None:
        """Pre-load the oracle, e.g. for driving a store populated out
        of band; :meth:`next_version` continues above the seeded values."""
        self._versions.update(versions)

    def next_version(self, key: str) -> int:
        """Assign the next totally ordered version for ``key`` (issue time)."""
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        return version

    def write_completed(self, key: str, version: int, succeeded: bool) -> None:
        """Account a finished write (completion time)."""
        if succeeded and version > self._acked.get(key, 0):
            self._acked[key] = version

    def expected_version(self, key: str) -> Optional[int]:
        """The highest version acknowledged for ``key`` right now — what
        a read *issued* at this instant must at least return."""
        return self._acked.get(key)

    def read_completed(
        self,
        key: str,
        now: float,
        succeeded: bool,
        result_version: Optional[int],
        expected=_NO_SNAPSHOT,
    ) -> bool:
        """Account a finished read; returns whether it was stale.

        A read is stale when it succeeds but returns a version older
        than ``expected`` — the highest version acknowledged when the
        read was *issued* (pass the :meth:`expected_version` snapshot
        taken at issue time; ``None`` there means nothing was acked
        yet, so the read cannot be stale no matter what lands while it
        is in flight). A concurrent engine must not judge a read
        against writes whose acks arrived only after issue: the read
        may legally linearize before them. When no snapshot is passed
        at all, the acked map is consulted now — equivalent for a
        closed loop, where nothing completes between issue and await.
        """
        self.availability.record(key, now, succeeded)
        if expected is _NO_SNAPSHOT:
            expected = self._acked.get(key)
        stale = bool(
            succeeded and expected is not None and (result_version or 0) < expected
        )
        if stale:
            self.stale_reads += 1
        return stale


@dataclass
class RunStats:
    """Outcome of one workload run.

    ``issued`` counts operations actually sent to the store;
    ``not_issued`` counts operations the runner declined to send — a
    degenerate scan with no keys in range, or (open loop) an arrival
    shed because the in-flight window was full. ``offered`` is their
    sum: everything the workload asked for.
    """

    issued: int = 0
    succeeded: int = 0
    failed: int = 0
    not_issued: int = 0
    stale_reads: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    not_issued_by_kind: Dict[str, int] = field(default_factory=dict)
    latencies: Dict[str, List[float]] = field(default_factory=dict)
    duration: float = 0.0
    messages_per_node: float = 0.0

    @property
    def offered(self) -> int:
        return self.issued + self.not_issued

    @property
    def success_rate(self) -> float:
        if self.issued == 0:
            return 0.0
        return self.succeeded / self.issued

    @property
    def throughput(self) -> float:
        """Completed operations per simulated second."""
        if self.duration <= 0:
            return 0.0
        return self.succeeded / self.duration

    def latency_summary(self, kind: str) -> Dict[str, float]:
        values = self.latencies.get(kind, [])
        return {
            "count": len(values),
            "mean": mean(values),
            "p50": percentile(values, 50),
            "p99": percentile(values, 99),
        }

    def record(self, kind: str, ok: bool, latency: Optional[float]) -> None:
        self.issued += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        if ok:
            self.succeeded += 1
            if latency is not None:
                self.latencies.setdefault(kind, []).append(latency)
        else:
            self.failed += 1

    def record_not_issued(self, kind: str) -> None:
        """Account an operation that never reached the store — it must
        not contribute a fake ~0-latency success, nor count against the
        store's success rate. ``by_kind`` stays issued-only;
        ``not_issued_by_kind`` shows what was shed."""
        self.not_issued += 1
        self.not_issued_by_kind[kind] = self.not_issued_by_kind.get(kind, 0) + 1


class WorkloadRunner:
    """Runs load and transaction phases against a storage stack.

    ``cluster`` is duck-typed: a
    :class:`~repro.backends.base.StoreBackend` or any deployment facade
    exposing ``sim``, ``servers``, ``new_client()`` and
    ``server_message_load()``, whose clients speak the
    :class:`~repro.core.client.PendingOp` protocol — the runner never
    branches on the concrete stack.

    ``observer`` shares one :class:`ConsistencyObserver` across several
    runners/engines (the scenario runner hands the load-phase observer
    to the open-loop engine); by default each runner gets its own.
    """

    def __init__(
        self,
        cluster,
        workload: CoreWorkload,
        client=None,
        seed: int = 0,
        op_timeout: float = 30.0,
        acks_required: int = 1,
        observer: Optional[ConsistencyObserver] = None,
    ) -> None:
        self.cluster = cluster
        self.workload = workload
        self.client = client if client is not None else cluster.new_client()
        self.rng = random.Random(seed)
        self.op_timeout = op_timeout
        self.acks_required = acks_required
        self.observer = observer if observer is not None else ConsistencyObserver()
        # Optional repro.obs.trace.OpTracer, wired by the scenario
        # runner. The tracer is activated only around the synchronous
        # client issue calls — never across _await, which executes
        # unrelated simulation events.
        self.tracer = None
        self._trace = None

    # ------------------------------------------------ observer pass-throughs

    @property
    def acked_versions(self) -> Dict[str, int]:
        """key -> highest acknowledged version (a copy)."""
        return self.observer.acked_versions

    @property
    def availability(self) -> AvailabilityTracker:
        return self.observer.availability

    # ------------------------------------------------------------- phases

    def run_load_phase(self) -> RunStats:
        """Insert the workload's ``record_count`` items (paper's workload)."""
        return self._run(self.workload.load_items(self.rng))

    def run_transactions(self, count: int) -> RunStats:
        """Run ``count`` transaction-phase operations."""
        return self._run(self.workload.operations(count, self.rng))

    # ------------------------------------------------------------ internals

    def _run(self, operations) -> RunStats:
        stats = RunStats()
        sim = self.cluster.sim
        start_time = sim.now
        start_msgs = server_message_total(self.cluster)
        for op in operations:
            self._execute(op, stats)
        stats.duration = sim.now - start_time
        stats.messages_per_node = messages_per_alive_node(self.cluster, start_msgs)
        return stats

    def _execute(self, op: Operation, stats: RunStats) -> None:
        tracer = self.tracer
        if tracer is None:
            self._dispatch(op, stats)
            return
        # Head-sampling counts every top-level op; a sampled op's trace
        # id is active only while its client calls are being issued.
        trace = tracer.sample_op(
            op.kind, op.key, getattr(self.client, "id", 0), self.cluster.sim.now
        )
        self._trace = trace
        try:
            ok = self._dispatch(op, stats)
        finally:
            self._trace = None
        if trace is not None:
            tracer.op_end(trace, bool(ok), self.cluster.sim.now)

    def _dispatch(self, op: Operation, stats: RunStats) -> Optional[bool]:
        """Issue one operation; returns its outcome (``None`` = never
        issued, e.g. a degenerate scan)."""
        if op.kind in (INSERT, UPDATE):
            pending = self._put(op.key, op.value)
            stats.record(op.kind, pending.succeeded, pending.latency)
            return pending.succeeded
        if op.kind == READ:
            pending = self._get(op.key, stats)
            stats.record(op.kind, pending.succeeded, pending.latency)
            return pending.succeeded
        if op.kind == RMW:
            started = self.cluster.sim.now
            read = self._get(op.key, stats)
            if not read.succeeded:
                stats.record(op.kind, False, None)
                return False
            write = self._put(op.key, op.value)
            latency = self.cluster.sim.now - started
            stats.record(op.kind, write.succeeded, latency if write.succeeded else None)
            return write.succeeded
        if op.kind == SCAN:
            started = self.cluster.sim.now
            base_index, end_index = scan_range(self.workload, op)
            if end_index <= base_index:
                # Nothing in range: zero gets were performed, so recording
                # a ~0-latency success would skew p50 — it was never issued.
                stats.record_not_issued(op.kind)
                return None
            all_ok = True
            for index in range(base_index, end_index):
                pending = self._get(self.workload.key_for(index), stats)
                all_ok = all_ok and pending.succeeded
            latency = self.cluster.sim.now - started
            stats.record(op.kind, all_ok, latency if all_ok else None)
            return all_ok
        return None

    def _put(self, key: str, value):
        version = self.observer.next_version(key)
        if self._trace is not None:
            with self.tracer.activated(self._trace):
                pending = self.client.put(key, value, version, self.acks_required)
        else:
            pending = self.client.put(key, value, version, self.acks_required)
        self._await(pending)
        self.observer.write_completed(key, version, pending.succeeded)
        return pending

    def _get(self, key: str, stats: RunStats):
        if self._trace is not None:
            with self.tracer.activated(self._trace):
                pending = self.client.get(key)
        else:
            pending = self.client.get(key)
        self._await(pending)
        if self.observer.read_completed(
            key, self.cluster.sim.now, pending.succeeded, pending.result_version
        ):
            stats.stale_reads += 1
        return pending

    def _await(self, pending) -> None:
        self.cluster.sim.run_until_condition(
            lambda: pending.done, self.op_timeout, check_interval=0.1
        )


def _key_index(key: str, prefix: str) -> int:
    return int(key[len(prefix):])

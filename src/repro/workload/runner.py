"""Closed-loop workload runner.

Drives a :class:`~repro.workload.ycsb.CoreWorkload` against any storage
stack through one client, assigning the totally ordered versions the
DATADROPLETS layer would
(inserts start at version 1, each update bumps the key's version), and
collects the statistics the benches report: success rates, latency
percentiles, and — the paper's metric — messages per server node.

Because the runner is the version oracle, it is also the consistency
observer the fault scenarios need: it knows the highest version each key
was *acknowledged* at, so it counts **stale reads** (a successful read
returning an older version) as they happen, tracks per-key
**unavailability windows** (first failed read until the next successful
one) in an :class:`~repro.sim.metrics.AvailabilityTracker`, and exposes
:attr:`WorkloadRunner.acked_versions` for the server-side lost-update
audit (:func:`repro.analysis.consistency.count_write_losses`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.metrics import AvailabilityTracker, mean, percentile
from repro.workload.ycsb import INSERT, READ, RMW, SCAN, UPDATE, CoreWorkload, Operation

__all__ = ["RunStats", "WorkloadRunner"]


@dataclass
class RunStats:
    """Outcome of one workload run."""

    issued: int = 0
    succeeded: int = 0
    failed: int = 0
    stale_reads: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    latencies: Dict[str, List[float]] = field(default_factory=dict)
    duration: float = 0.0
    messages_per_node: float = 0.0

    @property
    def success_rate(self) -> float:
        if self.issued == 0:
            return 0.0
        return self.succeeded / self.issued

    @property
    def throughput(self) -> float:
        """Completed operations per simulated second."""
        if self.duration <= 0:
            return 0.0
        return self.succeeded / self.duration

    def latency_summary(self, kind: str) -> Dict[str, float]:
        values = self.latencies.get(kind, [])
        return {
            "count": len(values),
            "mean": mean(values),
            "p50": percentile(values, 50),
            "p99": percentile(values, 99),
        }

    def record(self, kind: str, ok: bool, latency: Optional[float]) -> None:
        self.issued += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        if ok:
            self.succeeded += 1
            if latency is not None:
                self.latencies.setdefault(kind, []).append(latency)
        else:
            self.failed += 1


class WorkloadRunner:
    """Runs load and transaction phases against a storage stack.

    ``cluster`` is duck-typed: a
    :class:`~repro.backends.base.StoreBackend` or any deployment facade
    exposing ``sim``, ``new_client()`` and ``server_message_load()``,
    whose clients speak the :class:`~repro.core.client.PendingOp`
    protocol — the runner never branches on the concrete stack.
    """

    def __init__(
        self,
        cluster,
        workload: CoreWorkload,
        client=None,
        seed: int = 0,
        op_timeout: float = 30.0,
        acks_required: int = 1,
    ) -> None:
        self.cluster = cluster
        self.workload = workload
        self.client = client if client is not None else cluster.new_client()
        self.rng = random.Random(seed)
        self.op_timeout = op_timeout
        self.acks_required = acks_required
        # The version oracle the upper layer (DATADROPLETS) provides.
        self._versions: Dict[str, int] = {}
        # Highest version each key was acknowledged at — what a correct
        # system must still be able to serve.
        self._acked: Dict[str, int] = {}
        self.availability = AvailabilityTracker()

    @property
    def acked_versions(self) -> Dict[str, int]:
        """key -> highest acknowledged version (a copy)."""
        return dict(self._acked)

    # ------------------------------------------------------------- phases

    def run_load_phase(self) -> RunStats:
        """Insert the workload's ``record_count`` items (paper's workload)."""
        return self._run(self.workload.load_items(self.rng))

    def run_transactions(self, count: int) -> RunStats:
        """Run ``count`` transaction-phase operations."""
        return self._run(self.workload.operations(count, self.rng))

    # ------------------------------------------------------------ internals

    def _next_version(self, key: str) -> int:
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        return version

    def _run(self, operations) -> RunStats:
        stats = RunStats()
        sim = self.cluster.sim
        start_time = sim.now
        start_msgs = self.cluster.server_message_load()["handled"]
        for op in operations:
            self._execute(op, stats)
        stats.duration = sim.now - start_time
        end_msgs = self.cluster.server_message_load()["handled"]
        stats.messages_per_node = end_msgs - start_msgs
        return stats

    def _execute(self, op: Operation, stats: RunStats) -> None:
        if op.kind in (INSERT, UPDATE):
            pending = self._put(op.key, op.value)
            stats.record(op.kind, pending.succeeded, pending.latency)
        elif op.kind == READ:
            pending = self._get(op.key, stats)
            stats.record(op.kind, pending.succeeded, pending.latency)
        elif op.kind == RMW:
            started = self.cluster.sim.now
            read = self._get(op.key, stats)
            if not read.succeeded:
                stats.record(op.kind, False, None)
                return
            write = self._put(op.key, op.value)
            latency = self.cluster.sim.now - started
            stats.record(op.kind, write.succeeded, latency if write.succeeded else None)
        elif op.kind == SCAN:
            started = self.cluster.sim.now
            base_index = _key_index(op.key, self.workload.key_prefix)
            all_ok = True
            for offset in range(op.scan_length):
                index = base_index + offset
                if index >= self.workload.record_count:
                    break
                pending = self._get(self.workload.key_for(index), stats)
                all_ok = all_ok and pending.succeeded
            latency = self.cluster.sim.now - started
            stats.record(op.kind, all_ok, latency if all_ok else None)

    def _put(self, key: str, value):
        version = self._next_version(key)
        pending = self.client.put(key, value, version, self.acks_required)
        self._await(pending)
        if pending.succeeded and version > self._acked.get(key, 0):
            self._acked[key] = version
        return pending

    def _get(self, key: str, stats: RunStats):
        pending = self.client.get(key)
        self._await(pending)
        self.availability.record(key, self.cluster.sim.now, pending.succeeded)
        expected = self._acked.get(key)
        if (
            pending.succeeded
            and expected is not None
            and (pending.result_version or 0) < expected
        ):
            stats.stale_reads += 1
        return pending

    def _await(self, pending) -> None:
        self.cluster.sim.run_until_condition(
            lambda: pending.done, self.op_timeout, check_interval=0.1
        )


def _key_index(key: str, prefix: str) -> int:
    return int(key[len(prefix):])

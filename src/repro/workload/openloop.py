"""Concurrent open-loop workload engine (paper Section VI).

The paper's evaluation drives DATAFLASKS with many concurrent YCSB
clients, so latency is a function of *offered load*. The closed-loop
:class:`~repro.workload.runner.WorkloadRunner` issues one operation,
waits for it, then issues the next — it can never hold more than one
request in flight, so it cannot produce the paper's latency-vs-offered-
load curves. :class:`OpenLoopRunner` decouples issue from completion:

* operation **arrivals** are events inside the simulator, spaced by a
  Poisson or constant-rate process whose draws come from a dedicated
  named RNG stream (``workload.arrivals`` via
  :func:`~repro.sim.rng.derive_seed`) — arrival times never perturb,
  and are never perturbed by, any other random choice in the run;
* each arrival is fanned over a pool of ``clients`` client nodes
  (round-robin), bounded by an **in-flight window**: when
  ``max_in_flight`` operations are already outstanding, the arrival is
  shed and recorded as *not issued* (an open-loop client has finite
  request slots; shedding is what makes saturation visible as the gap
  between offered and delivered throughput);
* **completions** are observed through
  :meth:`~repro.core.client.PendingOp.on_complete` callbacks plus a
  per-operation watchdog, so the issue loop never blocks — a timed-out
  operation is recorded as failed without stalling later arrivals.

Consistency accounting under concurrency follows the
:class:`~repro.workload.runner.ConsistencyObserver` contract: versions
are assigned at issue time (total order), acknowledged versions are
recorded at **completion** time (an in-flight write is not yet a
promise), and a read is judged stale against the acked-version
snapshot taken when it was *issued* — a write whose ack lands while
the read is in flight may legally linearize after it, so it must not
retroactively make the read look stale. A write that completes after
its watchdog fired still registers its acknowledgement (the store did
ack it; the lost-update audit must know).

Statistics are windowed: the first ``warmup`` seconds of the run are
excluded from :class:`OpenLoopStats` (ramp-up must not pollute
steady-state percentiles), and measured operations are bucketed by
arrival time into fixed-length :class:`Window` s so
:mod:`repro.analysis.loadcurve` can report offered-vs-delivered
throughput and per-kind latency percentiles per measurement window.
Warmup operations still feed the consistency observer — staleness and
availability are properties of the whole run, not of the measurement
window.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sim.rng import derive_seed
from repro.workload.runner import (
    ConsistencyObserver,
    RunStats,
    messages_per_alive_node,
    scan_range,
    server_message_total,
)
from repro.workload.ycsb import INSERT, READ, RMW, SCAN, UPDATE, CoreWorkload, Operation

__all__ = ["ARRIVAL_PROCESSES", "OpenLoopRunner", "OpenLoopStats", "Window"]

ARRIVAL_PROCESSES = ("poisson", "constant")

# The dedicated stream arrival times are drawn from; see module docstring.
ARRIVAL_STREAM = "workload.arrivals"


@dataclass
class Window:
    """One fixed-length measurement window, bucketed by arrival time.

    ``offered`` counts arrivals, ``issued`` the subset that reached the
    store, ``not_issued`` the subset shed at a full in-flight window.
    Completions (``succeeded``/``failed``/``latencies``) are credited to
    the window the operation *arrived* in, so offered and delivered
    rates compare the same operation population.
    """

    start: float
    end: float
    offered: int = 0
    issued: int = 0
    not_issued: int = 0
    succeeded: int = 0
    failed: int = 0
    latencies: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def span(self) -> float:
        return self.end - self.start

    @property
    def offered_rate(self) -> float:
        return self.offered / self.span if self.span > 0 else 0.0

    @property
    def delivered_rate(self) -> float:
        return self.succeeded / self.span if self.span > 0 else 0.0


@dataclass
class OpenLoopStats(RunStats):
    """Outcome of one open-loop run (measurement window only).

    Inherited counters cover operations whose *arrival* fell inside the
    measurement window; ``warmup_ops`` arrivals came earlier and are
    excluded everywhere except the shared consistency accounting.
    ``duration`` spans from the end of warmup to the drain of the last
    in-flight operation.
    """

    timed_out: int = 0
    warmup_ops: int = 0
    rate: float = 0.0  # configured offered rate, ops/s
    clients: int = 1
    measure_start: float = 0.0
    windows: List[Window] = field(default_factory=list)

    @property
    def offered_rate(self) -> float:
        """Measured arrival rate inside the measurement window."""
        if self.duration <= 0:
            return 0.0
        return self.offered / self.duration


class _Flight:
    """One top-level operation in flight (possibly composite)."""

    __slots__ = (
        "kind", "key", "measured", "window", "issued_at",
        "done", "remaining_gets", "all_ok", "watchdog", "trace",
    )

    def __init__(self, kind: str, key: str, measured: bool, window, issued_at: float):
        self.kind = kind
        self.key = key
        self.measured = measured
        self.window = window
        self.issued_at = issued_at
        self.done = False
        self.remaining_gets = 0
        self.all_ok = True
        self.watchdog = None
        self.trace = None


class OpenLoopRunner:
    """Schedules an open-loop request stream inside the simulator.

    ``cluster`` is duck-typed exactly like
    :class:`~repro.workload.runner.WorkloadRunner`'s (``sim``,
    ``servers``, ``new_client()``, ``server_message_load()``, clients
    speaking ``PendingOp``). The operation *mix* comes from the workload
    generator seeded with ``seed`` — the same derivation the closed
    loop uses — while arrival *times* come from the dedicated
    ``workload.arrivals`` stream, so the engine is deterministic per
    ``(cluster seed, engine seed)`` and the two concerns never share
    RNG state.

    :param clients: size of the client pool arrivals fan over
        (round-robin). Pass ``client_pool`` to reuse existing clients
        instead of creating new ones.
    :param rate: offered load in operations per simulated second.
    :param arrival: ``poisson`` (exponential interarrivals) or
        ``constant`` (``1/rate`` spacing).
    :param warmup: seconds of ramp-up excluded from the returned stats.
    :param window: measurement-window length in seconds.
    :param max_in_flight: in-flight window bound; ``0`` means
        ``4 * clients``.
    """

    def __init__(
        self,
        cluster,
        workload: CoreWorkload,
        *,
        clients: int = 4,
        rate: float = 50.0,
        arrival: str = "poisson",
        warmup: float = 0.0,
        window: float = 5.0,
        max_in_flight: int = 0,
        seed: int = 0,
        op_timeout: float = 30.0,
        acks_required: int = 1,
        observer: Optional[ConsistencyObserver] = None,
        client_pool: Optional[list] = None,
    ) -> None:
        if arrival not in ARRIVAL_PROCESSES:
            raise ConfigurationError(
                f"unknown arrival process {arrival!r}; choose from {ARRIVAL_PROCESSES}"
            )
        if rate <= 0:
            raise ConfigurationError(f"open-loop rate must be positive, got {rate}")
        if clients < 1:
            raise ConfigurationError(f"clients must be >= 1, got {clients}")
        if warmup < 0 or window <= 0:
            raise ConfigurationError("warmup must be >= 0 and window > 0")
        if max_in_flight < 0:
            raise ConfigurationError(f"max_in_flight must be >= 0, got {max_in_flight}")
        self.cluster = cluster
        self.workload = workload
        self.rate = float(rate)
        self.arrival = arrival
        self.warmup = warmup
        self.window = window
        self.max_in_flight = max_in_flight if max_in_flight > 0 else 4 * clients
        self.op_timeout = op_timeout
        self.acks_required = acks_required
        self.rng = random.Random(seed)
        self.arrival_rng = random.Random(derive_seed(seed, ARRIVAL_STREAM))
        self.observer = observer if observer is not None else ConsistencyObserver()
        self.clients = (
            list(client_pool)
            if client_pool
            else [cluster.new_client() for _ in range(clients)]
        )
        self._next_client = 0
        self._outstanding = 0
        self.max_observed_in_flight = 0
        # Optional repro.obs.trace.OpTracer, wired by the scenario
        # runner. Activated only around synchronous client issue calls
        # (including the RMW write half inside its completion callback).
        self.tracer = None
        # Per-run state, reset by run_transactions.
        self._stats: OpenLoopStats = OpenLoopStats()
        self._ops = iter(())
        self._remaining = 0
        self._done_issuing = True
        self._measure_start = 0.0
        self._measure_msgs: Optional[float] = None

    # --------------------------------------------------------------- driving

    def run_transactions(self, count: int) -> OpenLoopStats:
        """Offer ``count`` operations at the configured rate, then drain.

        Advances virtual time until every arrival has fired and every
        issued operation completed (or its watchdog gave up on it).
        """
        sim = self.cluster.sim
        stats = OpenLoopStats(rate=self.rate, clients=len(self.clients))
        self._stats = stats
        self._ops = self.workload.operations(count, self.rng)
        self._remaining = count
        self._done_issuing = count == 0
        self._measure_start = sim.now + self.warmup
        self._measure_msgs = None
        stats.measure_start = self._measure_start
        sim.scheduler.schedule(self.warmup, self._begin_measurement)
        if count:
            sim.scheduler.schedule(self._interarrival(), self._on_arrival)
        # Expected issue span plus one full timeout of drain headroom.
        # Progress is guaranteed — every arrival schedules the next, and
        # each flight's watchdog fires within op_timeout — but a Poisson
        # stream can legitimately overrun the expected span, so keep
        # draining until genuinely done: returning early would hand back
        # a stats object that in-flight callbacks still mutate.
        budget = self.warmup + count / self.rate + self.op_timeout + 30.0
        while not sim.run_until_condition(
            lambda: self._done_issuing and self._outstanding == 0,
            timeout=budget,
            check_interval=0.1,
        ):
            pass
        stats.duration = max(0.0, sim.now - self._measure_start)
        if self._measure_msgs is not None:
            stats.messages_per_node = messages_per_alive_node(
                self.cluster, self._measure_msgs
            )
        return stats

    # ------------------------------------------------------------ issue loop

    def _interarrival(self) -> float:
        if self.arrival == "constant":
            return 1.0 / self.rate
        return self.arrival_rng.expovariate(self.rate)

    def _begin_measurement(self) -> None:
        # Message baseline snapshots at the warmup boundary so the
        # per-node figure covers the measurement window only.
        self._measure_msgs = server_message_total(self.cluster)

    def _on_arrival(self) -> None:
        sim = self.cluster.sim
        op = next(self._ops)
        self._remaining -= 1
        if self._remaining > 0:
            sim.scheduler.schedule(self._interarrival(), self._on_arrival)
        else:
            self._done_issuing = True
        measured = sim.now >= self._measure_start
        window = self._window_for(sim.now) if measured else None
        if window is not None:
            window.offered += 1
        else:
            self._stats.warmup_ops += 1
        if self._outstanding >= self.max_in_flight:
            # Open loop: arrivals are never queued behind completions.
            if measured:
                self._stats.record_not_issued(op.kind)
                window.not_issued += 1
            return
        self._issue(op, measured, window)

    def _window_for(self, now: float) -> Window:
        index = int((now - self._measure_start) / self.window)
        windows = self._stats.windows
        while len(windows) <= index:
            start = self._measure_start + len(windows) * self.window
            windows.append(Window(start=start, end=start + self.window))
        return windows[index]

    # -------------------------------------------------------------- issuing

    def _pick_client(self):
        client = self.clients[self._next_client]
        self._next_client = (self._next_client + 1) % len(self.clients)
        return client

    def _issue(self, op: Operation, measured: bool, window: Optional[Window]) -> None:
        sim = self.cluster.sim
        flight = _Flight(op.kind, op.key, measured, window, sim.now)
        if op.kind == SCAN:
            base_index, end_index = scan_range(self.workload, op)
            if end_index <= base_index:
                # Degenerate scan: zero gets — never issued (see the
                # closed-loop runner's identical rule).
                if measured:
                    self._stats.record_not_issued(op.kind)
                    window.not_issued += 1
                return
        self._outstanding += 1
        if self._outstanding > self.max_observed_in_flight:
            self.max_observed_in_flight = self._outstanding
        if window is not None:
            window.issued += 1
        flight.watchdog = sim.scheduler.schedule(
            self.op_timeout, self._on_watchdog, flight
        )
        client = self._pick_client()
        tracer = self.tracer
        if tracer is not None:
            # Head-sampling counts every issued top-level op; shed and
            # degenerate arrivals never reach this point.
            flight.trace = tracer.sample_op(
                op.kind, op.key, getattr(client, "id", 0), sim.now
            )
        if op.kind in (INSERT, UPDATE):
            self._issue_put(client, flight, op.key, op.value)
        elif op.kind == READ:
            expected = self.observer.expected_version(op.key)
            pending = self._client_call(flight, client.get, op.key)
            pending.on_complete(
                lambda p, f=flight, e=expected: self._on_read_done(f, e, p)
            )
        elif op.kind == RMW:
            expected = self.observer.expected_version(op.key)
            pending = self._client_call(flight, client.get, op.key)
            pending.on_complete(
                lambda p, f=flight, c=client, v=op.value, e=expected:
                    self._on_rmw_read_done(f, c, v, e, p)
            )
        else:  # SCAN
            flight.remaining_gets = end_index - base_index
            for index in range(base_index, end_index):
                key = self.workload.key_for(index)
                expected = self.observer.expected_version(key)
                pending = self._client_call(flight, client.get, key)
                pending.on_complete(
                    lambda p, f=flight, e=expected: self._on_scan_get_done(f, e, p)
                )

    def _client_call(self, flight: _Flight, fn, *args):
        """Issue one client call with the flight's trace (if sampled)
        active, so the sends it causes are attributed to the op."""
        if flight.trace is None:
            return fn(*args)
        with self.tracer.activated(flight.trace):
            return fn(*args)

    def _issue_put(self, client, flight: _Flight, key: str, value) -> None:
        version = self.observer.next_version(key)
        pending = self._client_call(
            flight, client.put, key, value, version, self.acks_required
        )
        pending.on_complete(
            lambda p, f=flight, k=key, v=version: self._on_put_done(f, k, v, p)
        )

    # ---------------------------------------------------------- completions

    def _on_put_done(self, flight: _Flight, key: str, version: int, pending) -> None:
        # Acked-version accounting happens even for operations the
        # watchdog already gave up on: the store acknowledged the write,
        # so the lost-update audit must expect it to survive.
        self.observer.write_completed(key, version, pending.succeeded)
        self._finish(flight, pending.succeeded, pending.latency)

    def _on_read_done(self, flight: _Flight, expected: Optional[int], pending) -> None:
        if self._account_read(flight.key, expected, pending):
            self._stats.stale_reads += 1
        self._finish(flight, pending.succeeded, pending.latency)

    def _on_rmw_read_done(
        self, flight: _Flight, client, value, expected: Optional[int], pending
    ) -> None:
        if self._account_read(flight.key, expected, pending):
            self._stats.stale_reads += 1
        if not pending.succeeded:
            self._finish(flight, False, None)
            return
        if flight.done:
            # The watchdog expired during the read half; don't start the
            # write half of an operation already recorded as failed.
            return
        self._issue_put(client, flight, flight.key, value)

    def _on_scan_get_done(self, flight: _Flight, expected: Optional[int], pending) -> None:
        if self._account_read(pending.key, expected, pending):
            self._stats.stale_reads += 1
        flight.all_ok = flight.all_ok and pending.succeeded
        flight.remaining_gets -= 1
        if flight.remaining_gets == 0:
            latency = self.cluster.sim.now - flight.issued_at
            self._finish(flight, flight.all_ok, latency if flight.all_ok else None)

    def _account_read(self, key: str, expected: Optional[int], pending) -> bool:
        """Stale/availability accounting: ``expected`` is the acked
        version snapshot taken when the read was issued."""
        return self.observer.read_completed(
            key,
            self.cluster.sim.now,
            pending.succeeded,
            pending.result_version,
            expected=expected,
        )

    def _on_watchdog(self, flight: _Flight) -> None:
        if flight.done:
            return
        if flight.measured:
            self._stats.timed_out += 1
        self._finish(flight, False, None)

    def _finish(self, flight: _Flight, ok: bool, latency: Optional[float]) -> None:
        """Close out a top-level operation exactly once."""
        if flight.done:
            return
        flight.done = True
        self._outstanding -= 1
        if flight.watchdog is not None:
            flight.watchdog.cancel()
        if flight.trace is not None:
            self.tracer.op_end(flight.trace, ok, self.cluster.sim.now)
        if not flight.measured:
            return
        # For RMW the latency spans read issue to write completion; for
        # composite failures there is no meaningful latency sample.
        if flight.kind == RMW and ok:
            latency = self.cluster.sim.now - flight.issued_at
        self._stats.record(flight.kind, ok, latency if ok else None)
        window = flight.window
        if ok:
            window.succeeded += 1
            if latency is not None:
                window.latencies.setdefault(flight.kind, []).append(latency)
        else:
            window.failed += 1

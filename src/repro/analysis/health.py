"""Cluster health and consistency reporting.

Operational tooling a downstream user needs before trusting an epidemic
store: per-key replication levels, under-replicated objects, placement
correctness (is the data where the key mapping says it should be), and
slice-coverage holes. Works on a live
:class:`~repro.core.cluster.DataFlasksCluster`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.core.cluster import DataFlasksCluster
from repro.core.keyspace import slice_for_key

__all__ = ["ConsistencyReport", "check_cluster"]


@dataclass
class ConsistencyReport:
    """Outcome of a full-cluster consistency sweep."""

    total_objects: int = 0
    replication: Dict[Tuple[str, int], int] = field(default_factory=dict)
    under_replicated: List[Tuple[str, int]] = field(default_factory=list)
    lost: List[Tuple[str, int]] = field(default_factory=list)
    misplaced_copies: int = 0
    empty_slices: List[int] = field(default_factory=list)
    slice_population: Dict[int, int] = field(default_factory=dict)

    @property
    def healthy(self) -> bool:
        """No lost objects, no under-replication, no empty slices."""
        return not self.lost and not self.under_replicated and not self.empty_slices

    def mean_replication(self) -> float:
        if not self.replication:
            return 0.0
        return sum(self.replication.values()) / len(self.replication)

    def summary(self) -> str:
        """Human-readable one-paragraph report."""
        lines = [
            f"objects: {self.total_objects}",
            f"mean replication: {self.mean_replication():.2f}",
            f"under-replicated: {len(self.under_replicated)}",
            f"lost: {len(self.lost)}",
            f"misplaced copies: {self.misplaced_copies}",
            f"empty slices: {self.empty_slices or 'none'}",
        ]
        return "\n".join(lines)


def check_cluster(cluster: DataFlasksCluster, min_replicas: int = 2) -> ConsistencyReport:
    """Sweep every alive server's store and grade the cluster.

    ``min_replicas`` is the threshold below which an object counts as
    under-replicated (1 copy is one crash away from loss — the paper's
    persistence discussion in Section VII).
    """
    report = ConsistencyReport()
    num_slices = cluster.config.num_slices
    holders: Dict[Tuple[str, int], int] = {}
    seen: Set[Tuple[str, int]] = set()
    for server in cluster.alive_servers():
        my_slice = server.my_slice()
        for obj in server.store.items():
            entry = (obj.key, obj.version)
            seen.add(entry)
            holders[entry] = holders.get(entry, 0) + 1
            if my_slice is not None and my_slice != slice_for_key(obj.key, num_slices):
                report.misplaced_copies += 1

    report.total_objects = len(seen)
    report.replication = holders
    report.under_replicated = sorted(
        entry for entry, count in holders.items() if count < min_replicas
    )
    # "Lost" can only be judged against an expected inventory; within one
    # sweep an object with zero alive holders simply does not appear, so
    # callers comparing against a known key set should use
    # :func:`missing_objects`.
    report.slice_population = cluster.slice_population()
    report.empty_slices = [
        i for i in range(num_slices) if report.slice_population.get(i, 0) == 0
    ]
    return report


def missing_objects(
    cluster: DataFlasksCluster, expected: List[Tuple[str, int]]
) -> List[Tuple[str, int]]:
    """Which of the expected (key, version) pairs have zero alive holders."""
    missing = []
    for key, version in expected:
        if cluster.replication_level(key, version) == 0:
            missing.append((key, version))
    return missing

"""ASCII tables and series for bench output.

The benches print the same rows/series the paper's figures plot; these
helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

__all__ = ["format_table", "format_series", "rows_to_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render a fixed-width table with a header rule."""
    str_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    title: str, xlabel: str, ylabel: str, points: Iterable[Tuple[Any, Any]]
) -> str:
    """Render one figure series as '<x> -> <y>' lines under a title."""
    lines = [title, f"  {xlabel} -> {ylabel}"]
    for x, y in points:
        lines.append(f"  {_fmt(x):>8} -> {_fmt(y)}")
    return "\n".join(lines)


def rows_to_table(rows: List[Dict[str, Any]], columns: Sequence[str]) -> str:
    """Tabulate a list of uniform dicts, selecting/ordering by ``columns``."""
    return format_table(columns, [[row.get(col, "") for col in columns] for row in rows])


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)

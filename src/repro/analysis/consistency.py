"""Consistency accounting for fault scenarios.

The nemesis makes dependability claims measurable; this module provides
the server-side half of the consistency/availability metric group:
comparing what clients were *acknowledged* against what the cluster
actually *retains*. The client-side half (stale reads, per-key
unavailability windows) is collected by the workload runner as requests
complete (:class:`~repro.sim.metrics.AvailabilityTracker`).

Definitions (``acked`` maps key -> highest version the writer got an
ack for):

* **lost update** — some version of the key survives on an alive server,
  but the highest surviving version is older than the acked one: an
  acknowledged write vanished while the object did not,
* **lost object** — no alive server holds any version of the key.

Both are computed over a sorted, capped key sample so the cost stays
bounded at paper scale and the result is deterministic.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

__all__ = ["count_write_losses"]


def count_write_losses(
    cluster, acked: Mapping[str, int], sample: Optional[int] = None
) -> Dict[str, float]:
    """``{"lost_updates", "lost_objects", "keys_checked"}`` for ``cluster``.

    ``cluster`` is any deployment facade whose ``servers`` expose
    ``alive`` and a :class:`~repro.core.store.VersionedStore` ``store``
    (both the DATAFLASKS and the DHT stack do).
    """
    keys = sorted(acked)
    if sample is not None:
        keys = keys[:sample]
    alive = [server for server in cluster.servers if server.alive]
    lost_updates = 0
    lost_objects = 0
    for key in keys:
        newest = 0
        for server in alive:
            versions = server.store.versions(key)
            if versions and versions[-1] > newest:
                newest = versions[-1]
        if newest == 0:
            lost_objects += 1
        elif newest < acked[key]:
            lost_updates += 1
    return {
        "lost_updates": float(lost_updates),
        "lost_objects": float(lost_objects),
        "keys_checked": float(len(keys)),
    }

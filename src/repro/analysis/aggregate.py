"""Cross-run aggregation of metric rows.

Multi-seed sweeps produce one flat ``name -> float`` mapping per seed;
:func:`aggregate_rows` collapses them into per-metric summary statistics
(mean, population stdev, min, max, sample count). Metrics missing from
some rows are aggregated over the rows that have them — a scenario that
skips its transaction phase at one seed simply contributes nothing to
the latency aggregates.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.sim.metrics import mean, stdev

__all__ = ["aggregate_rows", "aggregate_table_rows"]


def aggregate_rows(
    rows: Sequence[Dict[str, float]],
) -> Dict[str, Dict[str, float]]:
    """``metric -> {mean, stdev, min, max, n}`` over a list of metric rows."""
    by_metric: Dict[str, List[float]] = {}
    for row in rows:
        for name, value in row.items():
            by_metric.setdefault(name, []).append(float(value))
    return {
        name: {
            "mean": mean(values),
            "stdev": stdev(values),
            "min": min(values),
            "max": max(values),
            "n": float(len(values)),
        }
        for name, values in sorted(by_metric.items())
    }


def aggregate_table_rows(
    aggregate: Dict[str, Dict[str, float]],
) -> List[Dict[str, float]]:
    """Flatten an aggregate into rows for
    :func:`repro.analysis.tables.rows_to_table` (one row per metric)."""
    return [
        {"metric": name, **stats} for name, stats in aggregate.items()
    ]

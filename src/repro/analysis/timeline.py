"""Timeline analysis: turn flight-recorder windows into rates and tables.

The :class:`~repro.obs.timeline.TimelineRecorder` emits per-window
*deltas* of every registry counter; these helpers turn that series into
what a human (or ``repro report``) wants to look at — per-window rates
for chosen counters, a compact damage series (stale reads, drops, open
unavailability windows per window), and ASCII renderings built on
:mod:`repro.analysis.tables`.

All functions take the timeline's dict form
(:meth:`~repro.obs.timeline.TimelineRecorder.to_dict` or a loaded
``timeline.json``), so they work on live recorders and archived
artifacts alike.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import rows_to_table

__all__ = [
    "damage_series",
    "format_timeline",
    "load_timeline",
    "timeline_rates",
    "top_counters",
]

# Per-cause drop aggregates share this prefix; the per-type breakdowns
# below them carry a second dot and would double-count.
_DROP_PREFIX = "msg.dropped."


def load_timeline(path: str) -> Dict[str, Any]:
    """Load a ``timeline.json`` artifact."""
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def top_counters(timeline: Dict[str, Any], limit: int = 6) -> List[str]:
    """The ``limit`` counters with the largest whole-run totals —
    the default column set when the caller names none. Per-type message
    breakdowns are skipped in favour of their aggregates."""
    totals: Dict[str, float] = {}
    for row in timeline["windows"]:
        for name, value in row["counters"].items():
            totals[name] = totals.get(name, 0.0) + value
    keep = {
        name: total
        for name, total in totals.items()
        if name in ("msg.sent", "msg.received")
        or (not name.startswith("msg.sent.") and not name.startswith("msg.received."))
    }
    ranked = sorted(keep.items(), key=lambda item: (-item[1], item[0]))
    return [name for name, _ in ranked[:limit]]


def timeline_rates(
    timeline: Dict[str, Any], counters: Optional[Sequence[str]] = None
) -> List[Dict[str, float]]:
    """One row per window with per-second rates for ``counters``
    (defaults to :func:`top_counters`), plus any staleness /
    availability columns the recorder captured."""
    if counters is None:
        counters = top_counters(timeline)
    rows = []
    for window in timeline["windows"]:
        span = window["end"] - window["start"]
        row: Dict[str, float] = {"t": window["start"], "span": span}
        for name in counters:
            delta = window["counters"].get(name, 0.0)
            row[name] = delta / span if span > 0 else 0.0
        for extra in ("stale_reads", "unavail_closed", "unavail_open"):
            if extra in window:
                row[extra] = float(window[extra])
        rows.append(row)
    return rows


def damage_series(timeline: Dict[str, Any]) -> List[Dict[str, float]]:
    """Compact per-window damage: stale reads, drops of any cause, and
    unavailability windows still open at the window boundary."""
    rows = []
    for window in timeline["windows"]:
        drops = sum(
            value
            for name, value in window["counters"].items()
            if name.startswith(_DROP_PREFIX) and "." not in name[len(_DROP_PREFIX):]
        )
        rows.append(
            {
                "t": window["start"],
                "stale": float(window.get("stale_reads", 0)),
                "drops": drops,
                "unavail_open": float(window.get("unavail_open", 0)),
            }
        )
    return rows


def format_timeline(
    timeline: Dict[str, Any], counters: Optional[Sequence[str]] = None
) -> str:
    """ASCII table of per-window rates (counters are per-second)."""
    rows = timeline_rates(timeline, counters)
    if not rows:
        return "(empty timeline)"
    columns = list(rows[0].keys())
    return rows_to_table(rows, columns)

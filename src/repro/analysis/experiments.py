"""Experiment drivers for the paper's evaluation (Section VI).

Both figures measure *the average number of messages each node had to
send/receive to perform the YCSB requests* on a write-only workload:

* **Figure 3** — 10 slices held constant while the system grows from 500
  to 3,000 nodes: per-node message load stays roughly flat (extra nodes
  buy replication factor).
* **Figure 4** — slices grow proportionally to the system (constant
  replication factor): the extra nodes enlarge *capacity*, which we
  realise by loading proportionally more records; per-node message load
  grows with system size.

Scaling: the paper simulated 500–3,000 JVM nodes; a pure-Python sweep at
that size takes hours, so the default node counts are scaled down by 5×
with identical slice ratios (see DESIGN.md). Set ``REPRO_FULL_SCALE=1``
to run the paper's exact sizes.

Each driver returns a list of row dicts (one per swept system size) that
the benches print and benchmarks/results.txt records.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig
from repro.workload.runner import WorkloadRunner
from repro.workload.ycsb import WRITE_ONLY

__all__ = [
    "full_scale",
    "default_node_counts",
    "run_write_workload_point",
    "run_constant_slices",
    "run_proportional_slices",
]

# The paper's sweep and the 5x-scaled default (same ratios, tractable in CI).
PAPER_NODE_COUNTS = (500, 1000, 1500, 2000, 2500, 3000)
SCALED_NODE_COUNTS = (100, 200, 300, 400, 500, 600)
PAPER_SLICES_CONSTANT = 10
PAPER_NODES_PER_SLICE = 50  # 500 nodes / 10 slices at the first point
SCALED_NODES_PER_SLICE = 10


def full_scale() -> bool:
    """Whether the environment requests the paper's exact node counts."""
    return os.environ.get("REPRO_FULL_SCALE", "").strip() in ("1", "true", "yes")


def default_node_counts() -> Sequence[int]:
    return PAPER_NODE_COUNTS if full_scale() else SCALED_NODE_COUNTS


def default_nodes_per_slice() -> int:
    return PAPER_NODES_PER_SLICE if full_scale() else SCALED_NODES_PER_SLICE


def run_write_workload_point(
    n: int,
    num_slices: int,
    record_count: int,
    seed: int = 0,
    warmup: float = 10.0,
    convergence_timeout: float = 90.0,
    config: Optional[DataFlasksConfig] = None,
    window: int = 20,
) -> Dict[str, float]:
    """One figure point: write-only YCSB load against an ``n``-node cluster.

    Message load is measured as the *delta* over the workload phase, so
    warm-up gossip does not pollute the figure (the paper measures the
    messages needed "to perform the YCSB requests"). Writes are issued in
    pipelined windows of ``window`` concurrent requests — YCSB runs many
    client threads — which also keeps large sweeps tractable.
    """
    base = config or DataFlasksConfig()
    cfg = base.scaled_to(n, num_slices=num_slices)
    cluster = DataFlasksCluster(n=n, config=cfg, seed=seed)
    cluster.warm_up(warmup)
    cluster.wait_for_slices(timeout=convergence_timeout)

    workload = WRITE_ONLY.scaled(record_count)
    client = cluster.new_client(timeout=5.0, retries=2)
    rng = cluster.sim.rng_registry.stream("experiment.load")

    before = cluster.server_message_load()
    requests_before = _request_messages(cluster)
    started = cluster.sim.now

    operations = list(workload.load_items(rng))
    succeeded = 0
    for start in range(0, len(operations), window):
        batch = [
            client.put(op.key, op.value, version=1)
            for op in operations[start : start + window]
        ]
        cluster.sim.run_until_condition(
            lambda: all(op.done for op in batch), timeout=60, check_interval=0.1
        )
        succeeded += sum(op.succeeded for op in batch)

    after = cluster.server_message_load()
    requests_after = _request_messages(cluster)

    return {
        "n": n,
        "num_slices": num_slices,
        "ops": record_count,
        "messages_per_node": after["handled"] - before["handled"],
        "sent_per_node": after["sent"] - before["sent"],
        "request_messages_per_node": (requests_after - requests_before) / n,
        "success_rate": succeeded / record_count if record_count else 0.0,
        "duration": cluster.sim.now - started,
    }


def _request_messages(cluster: DataFlasksCluster) -> float:
    """Total put/get request deliveries so far (system-wide)."""
    metrics = cluster.sim.metrics
    return metrics.total("msg.received.PutRequest") + metrics.total(
        "msg.received.GetRequest"
    )


def run_constant_slices(
    node_counts: Optional[Sequence[int]] = None,
    num_slices: int = PAPER_SLICES_CONSTANT,
    record_count: int = 200,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Figure 3: constant slice count, growing system, fixed op count."""
    counts = list(node_counts) if node_counts is not None else list(default_node_counts())
    return [
        run_write_workload_point(n, num_slices, record_count, seed=seed + i)
        for i, n in enumerate(counts)
    ]


def run_proportional_slices(
    node_counts: Optional[Sequence[int]] = None,
    nodes_per_slice: Optional[int] = None,
    records_per_slice: int = 10,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Figure 4: slices ∝ nodes (constant replication factor).

    The paper says the added nodes "enlarge the system capacity"; the
    workload therefore loads ``records_per_slice`` items per slice, so
    the data set grows with the deployment exactly as capacity does.
    """
    counts = list(node_counts) if node_counts is not None else list(default_node_counts())
    per_slice = nodes_per_slice if nodes_per_slice is not None else default_nodes_per_slice()
    rows = []
    for i, n in enumerate(counts):
        num_slices = max(1, n // per_slice)
        record_count = records_per_slice * num_slices
        rows.append(
            run_write_workload_point(n, num_slices, record_count, seed=seed + i)
        )
    return rows

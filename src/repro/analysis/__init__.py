"""Experiment drivers and reporting helpers.

* :mod:`repro.analysis.experiments` — parameterised sweeps behind the
  Figure 3 / Figure 4 benches
* :mod:`repro.analysis.aggregate` — cross-seed aggregation for scenario
  sweeps
* :mod:`repro.analysis.consistency` — acked-vs-retained write-loss
  accounting for fault scenarios
* :mod:`repro.analysis.loadcurve` — offered-vs-delivered throughput and
  per-window latency percentiles for the open-loop engine
* :mod:`repro.analysis.tables` — ASCII tables/series for bench output
"""

from repro.analysis.aggregate import aggregate_rows, aggregate_table_rows
from repro.analysis.consistency import count_write_losses
from repro.analysis.health import ConsistencyReport, check_cluster, missing_objects
from repro.analysis.loadcurve import knee_point, load_curve_row, window_rows
from repro.analysis.experiments import (
    default_node_counts,
    full_scale,
    run_constant_slices,
    run_proportional_slices,
    run_write_workload_point,
)
from repro.analysis.tables import format_series, format_table, rows_to_table

__all__ = [
    "ConsistencyReport",
    "aggregate_rows",
    "aggregate_table_rows",
    "check_cluster",
    "count_write_losses",
    "missing_objects",
    "default_node_counts",
    "format_series",
    "format_table",
    "full_scale",
    "knee_point",
    "load_curve_row",
    "rows_to_table",
    "window_rows",
    "run_constant_slices",
    "run_proportional_slices",
    "run_write_workload_point",
]

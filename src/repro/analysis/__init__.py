"""Experiment drivers and reporting helpers.

* :mod:`repro.analysis.experiments` — parameterised sweeps behind the
  Figure 3 / Figure 4 benches
* :mod:`repro.analysis.aggregate` — cross-seed aggregation for scenario
  sweeps
* :mod:`repro.analysis.consistency` — acked-vs-retained write-loss
  accounting for fault scenarios
* :mod:`repro.analysis.loadcurve` — offered-vs-delivered throughput and
  per-window latency percentiles for the open-loop engine
* :mod:`repro.analysis.timeline` — rate/damage views over
  flight-recorder timelines (:mod:`repro.obs`)
* :mod:`repro.analysis.tables` — ASCII tables/series for bench output
"""

from repro.analysis.aggregate import aggregate_rows, aggregate_table_rows
from repro.analysis.consistency import count_write_losses
from repro.analysis.health import ConsistencyReport, check_cluster, missing_objects
from repro.analysis.loadcurve import knee_point, load_curve_row, window_rows
from repro.analysis.experiments import (
    default_node_counts,
    full_scale,
    run_constant_slices,
    run_proportional_slices,
    run_write_workload_point,
)
from repro.analysis.tables import format_series, format_table, rows_to_table
from repro.analysis.timeline import (
    damage_series,
    format_timeline,
    load_timeline,
    timeline_rates,
    top_counters,
)

__all__ = [
    "ConsistencyReport",
    "aggregate_rows",
    "aggregate_table_rows",
    "check_cluster",
    "count_write_losses",
    "damage_series",
    "missing_objects",
    "default_node_counts",
    "format_series",
    "format_table",
    "format_timeline",
    "full_scale",
    "knee_point",
    "load_curve_row",
    "load_timeline",
    "rows_to_table",
    "timeline_rates",
    "top_counters",
    "window_rows",
    "run_constant_slices",
    "run_proportional_slices",
    "run_write_workload_point",
]

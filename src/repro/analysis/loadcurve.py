"""Offered-vs-delivered load-curve aggregation for the open-loop engine.

Two consumers, two granularities:

* **per measurement window** — :func:`window_rows` flattens an
  :class:`~repro.workload.openloop.OpenLoopStats` into one row per
  window (offered/delivered rates, per-kind latency percentiles), for
  steady-state inspection of a single run;
* **per offered-load point** — :func:`load_curve_row` extracts one
  knee-curve point from a scenario result's flat metrics, and
  :func:`knee_point` finds the saturation knee across a sweep of
  offered rates: the highest point where the backend still delivers at
  least ``efficiency`` of what was offered
  (``benchmarks/bench_latency_throughput.py`` is the driver).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.metrics import percentile
from repro.workload.openloop import OpenLoopStats

__all__ = ["window_rows", "load_curve_row", "knee_point"]


def window_rows(stats: OpenLoopStats) -> List[Dict[str, float]]:
    """One row per measurement window, ready for ``rows_to_table``.

    Each row carries the window bounds, offered/issued/shed/completed
    counts, offered and delivered rates, and ``latency_<kind>_p50`` /
    ``latency_<kind>_p99`` for every operation kind that completed in
    the window.
    """
    rows: List[Dict[str, float]] = []
    for w in stats.windows:
        row: Dict[str, float] = {
            "start": w.start,
            "end": w.end,
            "offered": float(w.offered),
            "issued": float(w.issued),
            "not_issued": float(w.not_issued),
            "succeeded": float(w.succeeded),
            "failed": float(w.failed),
            "offered_rate": w.offered_rate,
            "delivered_rate": w.delivered_rate,
        }
        for kind in sorted(w.latencies):
            values = w.latencies[kind]
            row[f"latency_{kind}_p50"] = percentile(values, 50)
            row[f"latency_{kind}_p99"] = percentile(values, 99)
        rows.append(row)
    return rows


def load_curve_row(metrics: Dict[str, float]) -> Dict[str, float]:
    """One knee-curve point from a scenario result's flat metrics.

    ``metrics`` is :attr:`~repro.scenarios.runner.ScenarioResult.metrics`
    of an open-loop run: offered rate, delivered throughput, success
    rate, and every ``latency_*`` percentile the run produced.
    """
    row = {
        "offered_rate": metrics.get("txn_offered_rate", 0.0),
        "delivered_rate": metrics.get("txn_throughput", 0.0),
        "success_rate": metrics.get("txn_success_rate", 0.0),
        "not_issued": metrics.get("txn_not_issued", 0.0),
    }
    for name, value in metrics.items():
        if name.startswith("latency_"):
            row[name] = value
    return row


def knee_point(
    rows: Sequence[Dict[str, float]], efficiency: float = 0.9
) -> Optional[Dict[str, float]]:
    """The saturation knee of a load-curve sweep.

    ``rows`` are :func:`load_curve_row` points (any order). Returns the
    row with the highest offered rate whose delivered throughput is
    still at least ``efficiency`` of the offered rate — the last point
    before the latency/throughput curve bends — or ``None`` when every
    point is already past saturation.
    """
    sustained = [
        r
        for r in rows
        if r["offered_rate"] > 0
        and r["delivered_rate"] >= efficiency * r["offered_rate"]
    ]
    if not sustained:
        return None
    return max(sustained, key=lambda r: r["offered_rate"])

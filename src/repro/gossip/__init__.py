"""Generic epidemic building blocks (paper Section II).

* :class:`~repro.gossip.dissemination.DisseminationService` — probabilistic
  broadcast with ``ln(N)+c`` fanout sizing
* :mod:`repro.gossip.antientropy` — digest reconciliation primitives
"""

from repro.gossip.aggregation import (
    MinSketchShare,
    PushSumService,
    PushSumShare,
    SystemSizeEstimator,
)
from repro.gossip.antientropy import diff, make_digest, merge_digests, missing_from
from repro.gossip.dissemination import (
    DedupCache,
    DisseminationService,
    GossipMessage,
    atomic_infection_probability,
    fanout_for_probability,
    recommended_fanout,
)

__all__ = [
    "DedupCache",
    "DisseminationService",
    "GossipMessage",
    "MinSketchShare",
    "PushSumService",
    "PushSumShare",
    "SystemSizeEstimator",
    "atomic_infection_probability",
    "diff",
    "fanout_for_probability",
    "make_digest",
    "merge_digests",
    "missing_from",
    "recommended_fanout",
]

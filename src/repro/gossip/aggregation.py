"""Epidemic aggregation: push-sum averaging and system-size estimation.

Section III lists "data aggregation [24]" among the epidemic protocols
DATAFLASKS builds on, and two of the substrate's knobs secretly depend on
a quantity no node knows — the system size ``N``:

* the dissemination fanout must track ``ln N + c`` (Section II), and
* autonomous replication management (Section IV-C) needs ``N`` to choose
  the number of slices ``k ≈ N / r`` for a target replication factor.

This module implements the classic **push-sum** protocol (Kempe, Dobra &
Gehrke, FOCS 2003): every node keeps a pair ``(value, weight)``; each
round it halves its pair, keeps one half, and sends the other half to a
random PSS peer, adding whatever pairs arrive. The ratio ``value/weight``
converges exponentially fast to the global average, and **mass
conservation** (the invariant the property tests pin down) guarantees
correctness.

Size estimation uses a different, loss-tolerant aggregate: the
extreme-value **min-hash sketch** gossiped by :class:`SystemSizeEstimator`
(see its docstring). Min-aggregation converges monotonically, which makes
it the right tool under churn, while push-sum remains the general
averaging primitive (e.g. mean load, mean free capacity).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.pss.base import PeerSamplingService
from repro.sim.node import Service

__all__ = ["PushSumService", "PushSumShare", "SystemSizeEstimator", "MinSketchShare"]


@dataclass(frozen=True)
class PushSumShare:
    """Half of a node's (value, weight) mass, pushed to a peer."""

    value: float
    weight: float


class PushSumService(Service):
    """Push-sum averaging of a node-local ``value``.

    :param value: this node's contribution to the global average.
    :param period: seconds between push rounds.

    The protocol conserves total value and total weight exactly (shares
    are split, never copied), so ``estimate`` converges to the true mean
    of all alive contributions.
    """

    name = "push-sum"

    def __init__(self, value: float, period: float = 1.0) -> None:
        super().__init__()
        if period <= 0:
            raise ConfigurationError("period must be positive")
        self.local_value = value
        self.period = period
        self.value = value
        self.weight = 1.0
        self.rounds = 0

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        node = self.node
        assert node is not None
        node.register_handler(PushSumShare, self._on_share)
        node.every(self.period, self._round)

    def stop(self) -> None:
        node = self.node
        assert node is not None
        node.unregister_handler(PushSumShare)

    # -------------------------------------------------------------- rounds

    def _round(self) -> None:
        node = self.node
        assert node is not None
        pss = node.get_service(PeerSamplingService)
        assert pss is not None, "PushSumService requires a PeerSamplingService"
        peer = pss.random_peer()
        if peer is None:
            return
        self.rounds += 1
        self.value /= 2
        self.weight /= 2
        node.send(peer, PushSumShare(self.value, self.weight))

    def _on_share(self, msg: PushSumShare, src: int) -> None:
        self.value += msg.value
        self.weight += msg.weight

    # -------------------------------------------------------------- output

    @property
    def estimate(self) -> Optional[float]:
        """Current estimate of the global average (None before any mass)."""
        if self.weight <= 0:
            return None
        return self.value / self.weight


@dataclass(frozen=True)
class MinSketchShare:
    """A node's current minima vector for one estimation epoch.

    ``is_reply`` marks the passive side's answer in the push-pull
    exchange; replies are never answered again (that would ping-pong
    forever).
    """

    epoch: int
    minima: Tuple[float, ...]
    is_reply: bool = False


class SystemSizeEstimator(Service):
    """Continuous decentralised estimation of the system size ``N``.

    Uses the extreme-value (min-hash) sketch: in epoch ``e`` every node
    derives ``m`` pseudo-uniform draws ``u_j = h(e, j, node_id)`` and the
    system gossips the element-wise **minimum** vector. Min-aggregation is
    monotone and idempotent, so it converges exactly and tolerates churn
    and message loss by construction (unlike mass-conserving push-sum).
    The minimum of ``N`` uniforms is ≈ exponentially distributed with
    rate ``N``; with ``m`` independent minima the standard estimator

        ``N̂ = (m - 1) / sum_j(min_j)``

    is unbiased with relative error ``1/sqrt(m - 2)``. Epochs restart the
    sketch so departed nodes stop counting; the reported size blends the
    latest epochs exponentially.

    The estimate feeds the two knobs the paper leaves implicit:
    ``ln(N)+c`` fanout sizing and ``k ≈ N/r`` replication management —
    see :class:`repro.core.autoslice.ReplicationManager`.
    """

    name = "size-estimator"

    def __init__(
        self,
        period: float = 1.0,
        epoch_rounds: int = 20,
        sketch_size: int = 32,
        smoothing: float = 0.5,
    ) -> None:
        super().__init__()
        if period <= 0 or epoch_rounds <= 0:
            raise ConfigurationError("period and epoch_rounds must be positive")
        if sketch_size < 4:
            raise ConfigurationError("sketch_size must be at least 4")
        if not 0 < smoothing <= 1:
            raise ConfigurationError("smoothing must be in (0, 1]")
        self.period = period
        self.epoch_rounds = epoch_rounds
        self.sketch_size = sketch_size
        self.smoothing = smoothing
        self.epoch = 0
        self.round_in_epoch = 0
        self._minima: List[float] = []
        self._smoothed_size: Optional[float] = None

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        node = self.node
        assert node is not None
        node.register_handler(MinSketchShare, self._on_share)
        node.every(self.period, self._round)
        self._enter_epoch(0)

    def stop(self) -> None:
        node = self.node
        assert node is not None
        node.unregister_handler(MinSketchShare)

    # --------------------------------------------------------------- epochs

    def _own_draws(self, epoch: int) -> List[float]:
        node = self.node
        assert node is not None
        draws = []
        for j in range(self.sketch_size):
            digest = hashlib.blake2b(
                f"size-sketch:{epoch}:{j}:{node.id}".encode(), digest_size=8
            ).digest()
            # Avoid exact zeros: they would break the sum estimator.
            draws.append((int.from_bytes(digest, "big") + 1) / 2 ** 64)
        return draws

    def _enter_epoch(self, epoch: int) -> None:
        self.epoch = epoch
        self.round_in_epoch = 0
        self._minima = self._own_draws(epoch)

    def _estimate_from(self, minima: List[float]) -> float:
        total = sum(minima)
        if total <= 0:
            return 1.0
        return max(1.0, (self.sketch_size - 1) / total)

    def _finish_epoch(self) -> None:
        estimate = self._estimate_from(self._minima)
        if self._smoothed_size is None:
            self._smoothed_size = estimate
        else:
            self._smoothed_size = (
                (1 - self.smoothing) * self._smoothed_size
                + self.smoothing * estimate
            )

    def _round(self) -> None:
        node = self.node
        assert node is not None
        self.round_in_epoch += 1
        if self.round_in_epoch > self.epoch_rounds:
            self._finish_epoch()
            self._enter_epoch(self.epoch + 1)
        pss = node.get_service(PeerSamplingService)
        assert pss is not None, "SystemSizeEstimator requires a PeerSamplingService"
        peer = pss.random_peer()
        if peer is None:
            return
        node.send(peer, MinSketchShare(self.epoch, tuple(self._minima)))

    def _on_share(self, msg: MinSketchShare, src: int) -> None:
        node = self.node
        assert node is not None
        if msg.epoch < self.epoch:
            return  # stale epoch: ignore
        if msg.epoch > self.epoch:
            # A peer is ahead (round timers have jitter): fold our own
            # draws for the new epoch in and jump forward.
            self._finish_epoch()
            self._enter_epoch(msg.epoch)
        self._minima = [min(a, b) for a, b in zip(self._minima, msg.minima)]
        if not msg.is_reply:
            # Push-pull: answering the initiator halves convergence time
            # for min-gossip at one extra message per round.
            node.send(
                src, MinSketchShare(self.epoch, tuple(self._minima), is_reply=True)
            )

    # -------------------------------------------------------------- output

    def size(self) -> Optional[float]:
        """Smoothed estimate of N (None until the first epoch completes)."""
        return self._smoothed_size

    def instant_size(self) -> float:
        """Estimate from the current (possibly unconverged) epoch sketch."""
        return self._estimate_from(self._minima)

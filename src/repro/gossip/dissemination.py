"""Epidemic dissemination (paper Section II).

Implements the random-graph result the paper builds on: "taking N as the
number of nodes, each node must relay ln(N) + c messages to have a
probability of atomic infection of e^{-e^{-c}}" (Erdős–Rényi). The
:class:`DisseminationService` is an infect-and-die probabilistic
broadcast over the Peer Sampling Service with per-message deduplication —
the mechanism DATAFLASKS uses for request routing, packaged here
standalone so its delivery guarantees can be measured in isolation
(bench A2) and reused by other protocols.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.pss.base import PeerSamplingService
from repro.sim.node import Service

__all__ = [
    "GossipMessage",
    "DisseminationService",
    "recommended_fanout",
    "atomic_infection_probability",
    "fanout_for_probability",
]


def recommended_fanout(n: int, c: float = 2.0) -> int:
    """``ceil(ln N + c)`` — the per-node relay count for atomic infection.

    With this fanout the probability that *every* node is infected
    approaches :func:`atomic_infection_probability` (c=2 gives ~87%,
    c=4 gives ~98%).
    """
    if n <= 1:
        return 1
    return max(1, math.ceil(math.log(n) + c))


def atomic_infection_probability(c: float) -> float:
    """``e^{-e^{-c}}`` — P(atomic infection) for fanout ``ln N + c``."""
    return math.exp(-math.exp(-c))


def fanout_for_probability(n: int, p_atomic: float) -> int:
    """Smallest fanout achieving at least ``p_atomic`` on ``n`` nodes."""
    if not 0 < p_atomic < 1:
        raise ConfigurationError("p_atomic must be in (0, 1)")
    c = -math.log(-math.log(p_atomic))
    return recommended_fanout(n, c)


@dataclass(frozen=True)
class GossipMessage:
    """A broadcast payload in flight.

    ``msg_id`` deduplicates; ``hops`` counts forwarding steps so delivery
    latency (in hops) can be studied.
    """

    msg_id: Tuple[int, int]  # (origin node id, origin-local sequence)
    payload: Any
    ttl: int
    hops: int = 0


class DedupCache:
    """Bounded FIFO set of already-seen message ids."""

    def __init__(self, capacity: int = 10_000) -> None:
        if capacity <= 0:
            raise ConfigurationError("dedup capacity must be positive")
        self.capacity = capacity
        self._seen: "OrderedDict[Any, None]" = OrderedDict()

    def seen(self, key: Any) -> bool:
        """Record ``key``; returns True if it was already present."""
        if key in self._seen:
            return True
        self._seen[key] = None
        while len(self._seen) > self.capacity:
            self._seen.popitem(last=False)
        return False

    def __contains__(self, key: Any) -> bool:
        return key in self._seen

    def __len__(self) -> int:
        return len(self._seen)


class DisseminationService(Service):
    """Infect-and-die probabilistic broadcast over a PSS.

    Every node forwards a *new* message to ``fanout`` random peers and
    never again (duplicates are absorbed by the dedup cache). Subscribers
    receive each payload exactly once per node.

    :param fanout: peers to forward to; defaults (per message) to
        ``ln N + c`` if ``None`` and ``expected_n`` is set.
    """

    name = "dissemination"

    def __init__(
        self,
        fanout: Optional[int] = None,
        ttl: int = 32,
        expected_n: Optional[int] = None,
        c: float = 2.0,
        dedup_capacity: int = 50_000,
    ) -> None:
        super().__init__()
        if fanout is None:
            if expected_n is None:
                raise ConfigurationError("give either fanout or expected_n")
            fanout = recommended_fanout(expected_n, c)
        if fanout <= 0 or ttl <= 0:
            raise ConfigurationError("fanout and ttl must be positive")
        self.fanout = fanout
        self.ttl = ttl
        self._dedup = DedupCache(dedup_capacity)
        self._subscribers: List[Callable[[Any, Tuple[int, int], int], None]] = []
        self._next_seq = 0
        self.delivered = 0
        self.forwarded = 0

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        node = self.node
        assert node is not None
        node.register_handler(GossipMessage, self._on_gossip)

    def stop(self) -> None:
        node = self.node
        assert node is not None
        node.unregister_handler(GossipMessage)

    # ----------------------------------------------------------------- API

    def subscribe(self, callback: Callable[[Any, Tuple[int, int], int], None]) -> None:
        """Register ``callback(payload, msg_id, hops)`` for new messages."""
        self._subscribers.append(callback)

    def broadcast(self, payload: Any) -> Tuple[int, int]:
        """Originate a broadcast; returns its message id.

        The originator counts as infected and does not deliver to itself
        via the network (subscribers fire synchronously here).
        """
        node = self.node
        assert node is not None
        msg_id = (node.id, self._next_seq)
        self._next_seq += 1
        self._dedup.seen(msg_id)
        self._notify(payload, msg_id, hops=0)
        self._forward(GossipMessage(msg_id, payload, self.ttl, hops=0))
        return msg_id

    # ------------------------------------------------------------ internals

    def _pss(self) -> PeerSamplingService:
        node = self.node
        assert node is not None
        pss = node.get_service(PeerSamplingService)
        assert pss is not None, "DisseminationService requires a PeerSamplingService"
        return pss

    def _notify(self, payload: Any, msg_id: Tuple[int, int], hops: int) -> None:
        self.delivered += 1
        for callback in self._subscribers:
            callback(payload, msg_id, hops)

    def _forward(self, msg: GossipMessage) -> None:
        node = self.node
        assert node is not None
        if msg.ttl <= 0:
            return
        targets = self._pss().sample(self.fanout)
        for target in targets:
            node.send(
                target,
                GossipMessage(msg.msg_id, msg.payload, msg.ttl - 1, msg.hops + 1),
            )
            self.forwarded += 1

    def _on_gossip(self, msg: GossipMessage, src: int) -> None:
        if self._dedup.seen(msg.msg_id):
            return
        self._notify(msg.payload, msg.msg_id, msg.hops)
        self._forward(msg)

"""Anti-entropy set reconciliation primitives.

Pure functions shared by the DATAFLASKS replication service (and usable
by any digest-exchanging protocol): given two *digests* — the sets of
(key, version) pairs two replicas hold — compute what each side is
missing. Keeping this logic pure makes the exchange protocol in
:mod:`repro.core.replication` a thin messaging shell that is easy to
test exhaustively (including with hypothesis).
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, Set, Tuple

__all__ = ["Digest", "make_digest", "missing_from", "diff", "merge_digests"]

# A digest entry identifies one stored object version.
Digest = FrozenSet[Tuple[str, int]]


def make_digest(entries: Iterable[Tuple[str, int]]) -> Digest:
    """Normalise an iterable of (key, version) pairs into a digest."""
    return frozenset(entries)


def missing_from(local: AbstractSet[Tuple[str, int]], remote: AbstractSet[Tuple[str, int]]) -> Set[Tuple[str, int]]:
    """Entries the *local* replica lacks: present remotely, absent locally."""
    return set(remote) - set(local)


def diff(
    a: AbstractSet[Tuple[str, int]], b: AbstractSet[Tuple[str, int]]
) -> Tuple[Set[Tuple[str, int]], Set[Tuple[str, int]]]:
    """(what A is missing, what B is missing) in one call."""
    a_set, b_set = set(a), set(b)
    return b_set - a_set, a_set - b_set


def merge_digests(*digests: AbstractSet[Tuple[str, int]]) -> Digest:
    """Union of digests — the state a fully converged slice would hold."""
    merged: Set[Tuple[str, int]] = set()
    for digest in digests:
        merged |= set(digest)
    return frozenset(merged)

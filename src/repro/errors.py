"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the common cases.
"""

from __future__ import annotations

__all__ = [
    "CapacityExceededError",
    "ClientError",
    "ConfigurationError",
    "DeterminismError",
    "IsolationError",
    "NodeDownError",
    "OperationTimeoutError",
    "ReproError",
    "SimulationError",
    "StoreError",
    "UnknownNodeError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The simulation engine was driven into an invalid state."""


class NodeDownError(SimulationError):
    """An operation was attempted on a node that is not running."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"node {node_id} is not running")
        self.node_id = node_id


class UnknownNodeError(SimulationError):
    """A message was addressed to a node id the network has never seen."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"node id {node_id} is not registered with the network")
        self.node_id = node_id


class ConfigurationError(ReproError):
    """A protocol or cluster was configured with invalid parameters."""


class DeterminismError(SimulationError):
    """Sim-path code reached for ambient randomness or the wall clock.

    Raised by the runtime tripwires
    (:func:`repro.lint.sanitizer.determinism_guard`) when a sanitized
    run calls a module-level :mod:`random` function or ``time.time`` —
    the dynamic counterpart of the ``repro lint`` D1xx/D2xx rules.
    """


class IsolationError(SimulationError):
    """A message payload was mutated while in flight.

    Raised by the runtime payload checker
    (:func:`repro.lint.isolation.isolation_guard`) when a payload's
    structural digest at delivery differs from its digest at
    ``Network.send`` — some code kept a reference to the object after
    sending it and mutated it, violating the shared-nothing ownership
    contract (the dynamic counterpart of the ``repro lint`` I-rules).
    The message names sender, receiver, message type and simulated time.
    """

    def __init__(
        self, src: int, dst: int, kind: str, sent_at: float, now: float,
        detail: str = "",
    ) -> None:
        super().__init__(
            f"message {kind} from node {src} to node {dst} was mutated in "
            f"flight (sent at t={sent_at:.6f}, detected at t={now:.6f})"
            + (f": {detail}" if detail else "")
            + " — payloads are owned by the network once sent; build a "
            "fresh message instead of retaining and mutating the object "
            "(repro lint rules I2xx/I3xx)"
        )
        self.src = src
        self.dst = dst
        self.kind = kind
        self.sent_at = sent_at
        self.now = now


class StoreError(ReproError):
    """The data store rejected an operation."""


class CapacityExceededError(StoreError):
    """A node-local store refused a write because it is full."""


class ClientError(ReproError):
    """A client-visible operation failed."""


class OperationTimeoutError(ClientError):
    """A client operation did not complete within its timeout."""

    def __init__(self, op: str, key: str, timeout: float) -> None:
        super().__init__(f"{op}({key!r}) timed out after {timeout:.3f}s of simulated time")
        self.op = op
        self.key = key
        self.timeout = timeout

"""DATAFLASKS reproduction: an epidemic dependable key-value substrate.

Full Python reproduction of Maia et al., "DATAFLASKS: an epidemic
dependable key-value substrate" (DSN 2013), including every substrate the
paper depends on: a deterministic discrete-event simulator, Peer Sampling
Services (Cyclon/Newscast), distributed slicing protocols, epidemic
dissemination, a YCSB-style workload generator, churn injection, and a
Chord-style DHT baseline.

Quickstart::

    from repro import DataFlasksCluster

    cluster = DataFlasksCluster(n=100, seed=42)
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=60)
    client = cluster.new_client()
    cluster.put_sync(client, "user:1", b"alice", version=1)
    result = cluster.get_sync(client, "user:1")
    assert result.value == b"alice"

Storage stacks are pluggable: every experiment surface (scenario specs,
workload runner, nemesis, benches, CLI) drives a
:class:`~repro.backends.base.StoreBackend` resolved from
:func:`get_backend`; ``core`` (DATAFLASKS), ``dht`` (Chord) and
``oracle`` (idealized ground-truth store) ship registered. See
DESIGN.md ("Backend architecture") for the paper-vs-reproduction
mapping and how to add a stack, and benchmarks/README.md for the
reproduced figures.
"""

from repro.backends import (
    BackendRegistry,
    StoreBackend,
    get_backend,
    list_backends,
    register_backend,
)
from repro.core import (
    DataFlasksClient,
    DataFlasksCluster,
    DataFlasksConfig,
    DataFlasksNode,
    FileStore,
    MemoryStore,
    PendingOp,
    VersionedStore,
    slice_for_key,
)
from repro.droplets import DropletsSession
from repro.sim import Simulation

__version__ = "1.8.0"

__all__ = [
    "BackendRegistry",
    "DataFlasksClient",
    "DropletsSession",
    "DataFlasksCluster",
    "DataFlasksConfig",
    "DataFlasksNode",
    "FileStore",
    "MemoryStore",
    "PendingOp",
    "Simulation",
    "StoreBackend",
    "VersionedStore",
    "get_backend",
    "list_backends",
    "register_backend",
    "slice_for_key",
    "__version__",
]

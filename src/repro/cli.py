"""Command-line interface: run demos and experiments without writing code.

Usage (after ``pip install -e .``)::

    python -m repro demo                 # 60-node put/get walkthrough
    python -m repro fig3 --nodes 100 200 # Figure 3 sweep
    python -m repro fig4 --nodes 100 200 # Figure 4 sweep
    python -m repro check --nodes 50     # deploy, load, health report

Each subcommand prints the same tables the benches emit, so the CLI is
the quickest way to eyeball a result before running the full pytest
benches.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.analysis.experiments import (
    run_constant_slices,
    run_proportional_slices,
)
from repro.analysis.health import check_cluster
from repro.analysis.tables import format_series, rows_to_table
from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig

__all__ = ["main", "build_parser"]

FIG_COLUMNS = ["n", "num_slices", "ops", "messages_per_node", "success_rate"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DATAFLASKS reproduction — demos and paper experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="boot a cluster and run a put/get walkthrough")
    demo.add_argument("--nodes", type=int, default=60)
    demo.add_argument("--slices", type=int, default=5)
    demo.add_argument("--seed", type=int, default=42)

    fig3 = sub.add_parser("fig3", help="Figure 3 sweep: constant slices")
    fig3.add_argument("--nodes", type=int, nargs="+", default=[100, 200, 300])
    fig3.add_argument("--slices", type=int, default=10)
    fig3.add_argument("--records", type=int, default=200)
    fig3.add_argument("--seed", type=int, default=0)

    fig4 = sub.add_parser("fig4", help="Figure 4 sweep: slices proportional to nodes")
    fig4.add_argument("--nodes", type=int, nargs="+", default=[100, 200, 300])
    fig4.add_argument("--nodes-per-slice", type=int, default=10)
    fig4.add_argument("--records-per-slice", type=int, default=10)
    fig4.add_argument("--seed", type=int, default=0)

    check = sub.add_parser("check", help="deploy, load data, print a health report")
    check.add_argument("--nodes", type=int, default=50)
    check.add_argument("--slices", type=int, default=5)
    check.add_argument("--keys", type=int, default=10)
    check.add_argument("--seed", type=int, default=7)

    return parser


def _cmd_demo(args: argparse.Namespace) -> int:
    cluster = DataFlasksCluster(
        n=args.nodes, config=DataFlasksConfig(num_slices=args.slices), seed=args.seed
    )
    print(f"booting {args.nodes} nodes / {args.slices} slices ...")
    cluster.warm_up(10)
    converged = cluster.wait_for_slices(timeout=120)
    print(f"slicing converged: {converged}; populations {cluster.slice_population()}")
    client = cluster.new_client()
    cluster.put_sync(client, "demo:key", b"hello dataflasks", version=1)
    result = cluster.get_sync(client, "demo:key")
    print(f"get(demo:key) -> {result.value!r} (version {result.result_version})")
    cluster.sim.run_for(15)
    print(f"replication level: {cluster.replication_level('demo:key')}")
    print(f"per-node message load: {cluster.server_message_load()['handled']:.1f}")
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    rows = run_constant_slices(
        node_counts=args.nodes,
        num_slices=args.slices,
        record_count=args.records,
        seed=args.seed,
    )
    print(rows_to_table(rows, FIG_COLUMNS))
    print(
        format_series(
            "Figure 3 (expected: roughly flat)",
            "nodes",
            "msgs/node",
            [(r["n"], r["messages_per_node"]) for r in rows],
        )
    )
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    rows = run_proportional_slices(
        node_counts=args.nodes,
        nodes_per_slice=args.nodes_per_slice,
        records_per_slice=args.records_per_slice,
        seed=args.seed,
    )
    print(rows_to_table(rows, FIG_COLUMNS))
    print(
        format_series(
            "Figure 4 (expected: growing with system size)",
            "nodes",
            "msgs/node",
            [(r["n"], r["messages_per_node"]) for r in rows],
        )
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    cluster = DataFlasksCluster(
        n=args.nodes, config=DataFlasksConfig(num_slices=args.slices), seed=args.seed
    )
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=120)
    client = cluster.new_client()
    for i in range(args.keys):
        cluster.put_sync(client, f"check:{i}", f"value-{i}".encode(), version=1)
    cluster.sim.run_for(20)
    report = check_cluster(cluster)
    print(report.summary())
    print(f"healthy: {report.healthy}")
    return 0 if report.healthy else 1


_COMMANDS = {
    "demo": _cmd_demo,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "check": _cmd_check,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)

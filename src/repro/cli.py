"""Command-line interface: run demos and experiments without writing code.

Usage (after ``pip install -e .``)::

    python -m repro demo                 # 60-node put/get walkthrough
    python -m repro fig3 --nodes 100 200 # Figure 3 sweep
    python -m repro fig4 --nodes 100 200 # Figure 4 sweep
    python -m repro check --nodes 50     # deploy, load, health report
    python -m repro backends list        # registered storage backends
    python -m repro scenarios list       # bundled scenario catalogue
    python -m repro scenarios run catastrophic-failure --seed 7
    python -m repro scenarios run flight-recorder --timeline --trace --profile
    python -m repro report obs/flight-recorder-s11   # inspect run artifacts
    python -m repro scenarios sweep baseline --seeds 0 1 2 --jobs 4
    python -m repro scenarios validate my-spec.toml  # check without running
    python -m repro hunt run --seed 7 --budget 8 --shrink --export specs/regressions
    python -m repro hunt shrink --seed 7 --candidate 0
    python -m repro hunt replay specs/regressions    # exit 1 if bounds break
    python -m repro lint src                         # determinism hazard scan
    python -m repro lint src --format json           # machine-readable report
    python -m repro lint src --select I2,D1          # scope to chosen families
    python -m repro scenarios run baseline --sanitize  # runtime tripwires armed
    python -m repro scenarios run baseline --isolation-check  # payload checker
    python -m repro protocol graph --format dot      # static message graph
    python -m repro scenarios run baseline --protocol-coverage  # edge accounting

Each subcommand prints the same tables the benches emit, so the CLI is
the quickest way to eyeball a result before running the full pytest
benches.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.analysis.aggregate import aggregate_table_rows
from repro.analysis.experiments import (
    run_constant_slices,
    run_proportional_slices,
)
from repro.analysis.health import check_cluster
from repro.analysis.tables import format_series, format_table, rows_to_table
from repro.backends import REGISTRY, get_backend
from repro.core.cluster import DataFlasksCluster
from repro.core.config import DataFlasksConfig
from repro.errors import ConfigurationError, DeterminismError, IsolationError
from repro.scenarios.registry import bundled_names, load_all_bundled, load_bundled
from repro.scenarios.runner import run_scenario, run_sweep
from repro.scenarios.spec import ScenarioSpec, load_spec

__all__ = ["main", "build_parser"]

FIG_COLUMNS = ["n", "num_slices", "ops", "messages_per_node", "success_rate"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DATAFLASKS reproduction — demos and paper experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="boot a cluster and run a put/get walkthrough")
    demo.add_argument("--nodes", type=int, default=60)
    demo.add_argument("--slices", type=int, default=5)
    demo.add_argument("--seed", type=int, default=42)

    fig3 = sub.add_parser("fig3", help="Figure 3 sweep: constant slices")
    fig3.add_argument("--nodes", type=int, nargs="+", default=[100, 200, 300])
    fig3.add_argument("--slices", type=int, default=10)
    fig3.add_argument("--records", type=int, default=200)
    fig3.add_argument("--seed", type=int, default=0)

    fig4 = sub.add_parser("fig4", help="Figure 4 sweep: slices proportional to nodes")
    fig4.add_argument("--nodes", type=int, nargs="+", default=[100, 200, 300])
    fig4.add_argument("--nodes-per-slice", type=int, default=10)
    fig4.add_argument("--records-per-slice", type=int, default=10)
    fig4.add_argument("--seed", type=int, default=0)

    check = sub.add_parser("check", help="deploy, load data, print a health report")
    check.add_argument("--nodes", type=int, default=50)
    check.add_argument("--slices", type=int, default=5)
    check.add_argument("--keys", type=int, default=10)
    check.add_argument("--seed", type=int, default=7)

    backends = sub.add_parser(
        "backends", help="pluggable storage backends (list)"
    )
    backends_action = backends.add_subparsers(dest="action", required=True)
    backends_action.add_parser("list", help="show registered backends")

    scenarios = sub.add_parser(
        "scenarios", help="declarative experiments (list, run, sweep)"
    )
    action = scenarios.add_subparsers(dest="action", required=True)

    action.add_parser("list", help="show the bundled scenario catalogue")

    run = action.add_parser("run", help="execute one scenario at one seed")
    _add_scenario_selection(run)
    run.add_argument("--seed", type=int, default=None, help="override the spec's seed")
    run.add_argument(
        "--summary",
        action="store_true",
        help="print the canonical JSON summary instead of a table "
        "(byte-identical across runs of the same spec and seed)",
    )
    run.add_argument(
        "--brief",
        action="store_true",
        help="print a human top-line (ops, damage, availability) instead "
        "of the full metric table",
    )
    run.add_argument(
        "--sanitize",
        action="store_true",
        help="arm the runtime determinism guard: any ambient random.* "
        "call or time.time read during the run raises DeterminismError "
        "(trajectory-neutral — summaries match an unsanitized run)",
    )
    run.add_argument(
        "--isolation-check",
        action="store_true",
        help="arm the copy-on-send payload checker: every payload is "
        "digested at Network.send and re-verified at delivery; an "
        "in-flight mutation raises IsolationError (trajectory-neutral — "
        "summaries match an unchecked run)",
    )
    run.add_argument(
        "--protocol-coverage",
        action="store_true",
        help="account every delivery per (node class, message type) edge "
        "and report, on stderr, which static protocol edges the run "
        "never exercised (trajectory-neutral — summaries match a plain "
        "run)",
    )
    obs_group = run.add_argument_group(
        "observability",
        "flight-recorder pillars; each flag forces its pillar on, the "
        "spec's [observability] section supplies the rest. Artifacts "
        "land in --obs-dir; run `repro report DIR` to inspect them.",
    )
    obs_group.add_argument(
        "--timeline",
        action="store_true",
        help="record a per-window counter/damage timeline (timeline.json)",
    )
    obs_group.add_argument(
        "--trace",
        action="store_true",
        help="trace sampled ops causally through the network "
        "(trace.json, Chrome/Perfetto trace-event format)",
    )
    obs_group.add_argument(
        "--profile",
        action="store_true",
        help="profile wall-clock hotspots on the event loop (hotspots.json)",
    )
    obs_group.add_argument(
        "--no-obs",
        action="store_true",
        help="ignore the spec's [observability] section (explicit "
        "--timeline/--trace/--profile flags still apply)",
    )
    obs_group.add_argument(
        "--obs-dir",
        metavar="DIR",
        help="artifact directory (default obs/<scenario>-s<seed>)",
    )

    sweep = action.add_parser("sweep", help="run a scenario over several seeds")
    _add_scenario_selection(sweep)
    sweep.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2], help="seeds to run"
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to spread the seeds over (default 1, serial; "
        "aggregates are byte-identical whatever the job count)",
    )
    sweep.add_argument(
        "--summary",
        action="store_true",
        help="print the canonical JSON aggregate instead of a table "
        "(byte-identical across runs and across --jobs values)",
    )
    sweep.add_argument(
        "--sanitize",
        action="store_true",
        help="arm the runtime determinism guard in every seed's run "
        "(worker processes included)",
    )
    sweep.add_argument(
        "--isolation-check",
        action="store_true",
        help="arm the copy-on-send payload checker in every seed's run "
        "(worker processes included)",
    )
    sweep.add_argument(
        "--protocol-coverage",
        action="store_true",
        help="account protocol edges in every seed's run; the stderr "
        "coverage report reflects serially-run seeds (with --jobs > 1 "
        "the counters stay in the workers)",
    )

    validate = action.add_parser(
        "validate",
        help="check a .toml/.json spec (its stack against the backend "
        "registry, and its [faults] schedule) without running it",
    )
    validate.add_argument(
        "spec",
        help="path to a spec file, or a bundled scenario name",
    )

    report = sub.add_parser(
        "report",
        help="render a flight-recorder artifact directory",
        description="Render the artifacts one `scenarios run "
        "--timeline/--trace/--profile` wrote: manifest provenance, the "
        "per-window timeline as rates, the hotspot table, and the trace "
        "summary. Point Perfetto (ui.perfetto.dev) at trace.json for the "
        "interactive view.",
    )
    report.add_argument(
        "directory",
        help="artifact directory containing manifest.json (or the "
        "manifest path itself)",
    )
    report.add_argument(
        "--top",
        type=int,
        default=12,
        help="rows to show in the hotspot table (default 12)",
    )

    hunt = sub.add_parser(
        "hunt",
        help="adversarial nemesis search (run, shrink, replay)",
        description="Jepsen-style consistency hunter: sample randomized "
        "fault schedules, score their damage against the oracle backend "
        "on identical inputs, shrink violations to minimal reproducers, "
        "and freeze them as regression specs.",
    )
    hunt_action = hunt.add_subparsers(dest="action", required=True)

    hunt_run = hunt_action.add_parser(
        "run", help="sample and score a budget of candidate schedules"
    )
    _add_hunt_options(hunt_run)
    hunt_run.add_argument(
        "--budget", type=int, default=8, help="candidate schedules to score"
    )
    hunt_run.add_argument(
        "--shrink",
        action="store_true",
        help="also shrink the best violation to a minimal reproducer",
    )
    hunt_run.add_argument(
        "--export",
        metavar="DIR",
        help="with --shrink: write the reproducer as a regression spec here",
    )
    hunt_run.add_argument(
        "--log",
        metavar="FILE",
        help="write the canonical JSON hunt log here (byte-identical "
        "across replays of the same seed/config — CI compares two directly)",
    )
    hunt_run.add_argument(
        "--summary",
        action="store_true",
        help="print the canonical JSON hunt log instead of tables",
    )
    hunt_run.add_argument(
        "--timeline-window",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="attach a per-candidate damage timeline with this window "
        "(0 = off, the default — hunt logs then match pre-obs hunts)",
    )

    hunt_shrink = hunt_action.add_parser(
        "shrink", help="shrink one candidate of a previous hunt by its index"
    )
    _add_hunt_options(hunt_shrink)
    hunt_shrink.add_argument(
        "--candidate", type=int, required=True, help="candidate index to shrink"
    )
    hunt_shrink.add_argument(
        "--shrink-budget",
        type=int,
        default=40,
        help="max score evaluations the shrinker may spend",
    )
    hunt_shrink.add_argument(
        "--export",
        metavar="DIR",
        help="write the minimal reproducer as a regression spec here",
    )

    hunt_replay = hunt_action.add_parser(
        "replay",
        help="replay regression specs and check their expected-damage bounds",
    )
    hunt_replay.add_argument(
        "specs",
        nargs="+",
        help="regression spec .toml files (or directories of them)",
    )
    hunt_replay.add_argument(
        "--summary",
        action="store_true",
        help="print each replayed score as canonical JSON",
    )

    lint = sub.add_parser(
        "lint",
        help="static determinism & isolation hazard scan (AST pass)",
        description="Walk the source tree and flag determinism hazards — "
        "ambient randomness (D1xx), wall-clock reads (D2xx), hash/"
        "filesystem order dependence (D3xx), __all__ drift (D4xx) — and "
        "isolation hazards: cross-node reach-through (I1xx), payload "
        "aliasing (I2xx), mutation-after-forward (I3xx), callback "
        "capture (I4xx) — and protocol-flow hazards judged against the "
        "whole-program message graph: dead letters (P1xx), payload "
        "schema drift (P2xx), request/reply discipline (P3xx), dead "
        "protocol code (P4xx). "
        "Inline comments of the form `repro-lint: ignore[D301] reason` "
        "(after a `#`) and the "
        "committed .repro-lint.toml policy govern exemptions. Exits "
        "non-zero on any un-baselined violation.",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    lint.add_argument(
        "--config",
        metavar="FILE",
        help="policy file (default: ./.repro-lint.toml if present, else "
        "built-in defaults with an empty baseline)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (json is canonical: sorted keys, stable "
        "ordering — byte-identical across runs of the same tree)",
    )
    lint.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids/families to scope the run to "
        "(e.g. I2,D1); unknown selectors exit 2",
    )
    lint.add_argument(
        "--ignore-family",
        metavar="FAMILY",
        action="append",
        default=[],
        help="drop one rule family (repeatable, e.g. --ignore-family I4)",
    )
    lint.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed, allowlisted and baselined findings",
    )
    lint.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write a policy file absorbing every current violation "
        "(each entry gets a TODO justification to fill in), then exit 0",
    )

    protocol = sub.add_parser(
        "protocol",
        help="whole-program message graph (static protocol artifact)",
        description="Extract the static protocol graph of the sim path — "
        "message dataclasses, send sites, handler registrations — and "
        "serialise it. Output is deterministic byte-for-byte: two "
        "invocations over the same tree emit identical artifacts (the "
        "CI gate byte-compares them).",
    )
    protocol_action = protocol.add_subparsers(dest="action", required=True)
    graph = protocol_action.add_parser(
        "graph", help="emit the message graph as JSON or Graphviz DOT"
    )
    graph.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to scan (default: the installed "
        "repro package)",
    )
    graph.add_argument(
        "--config",
        metavar="FILE",
        help="lint policy file (sim-path classification; default: "
        "./.repro-lint.toml if present, else built-in defaults)",
    )
    graph.add_argument(
        "--format",
        choices=["json", "dot"],
        default="json",
        help="artifact format (default json; both are byte-stable)",
    )

    return parser


def _add_hunt_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed", type=int, default=0, help="search seed (derives every candidate)"
    )
    parser.add_argument(
        "--stack", default="core", help="backend under test (default core)"
    )
    parser.add_argument(
        "--nodes", type=int, default=20, help="base-experiment population"
    )
    parser.add_argument(
        "--records", type=int, default=8, help="records loaded before the fault phase"
    )
    parser.add_argument(
        "--ops", type=int, default=40, help="transaction-phase operation count"
    )


def _add_scenario_selection(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "scenario",
        nargs="?",
        help=f"bundled scenario name ({', '.join(bundled_names())})",
    )
    parser.add_argument(
        "--spec", help="path to a custom .toml/.json spec (instead of a bundled name)"
    )
    parser.add_argument(
        "--nodes", type=int, default=None, help="override the spec's population"
    )
    parser.add_argument(
        "--records", type=int, default=None, help="override the workload record count"
    )
    parser.add_argument(
        "--ops", type=int, default=None, help="override the transaction op count"
    )


def _resolve_spec(args: argparse.Namespace) -> ScenarioSpec:
    if args.spec and args.scenario:
        raise SystemExit(
            f"give either a bundled scenario name ({args.scenario!r}) or "
            f"--spec {args.spec!r}, not both"
        )
    if args.spec:
        spec = load_spec(args.spec)
    elif args.scenario:
        spec = load_bundled(args.scenario)
    else:
        raise SystemExit("give a bundled scenario name or --spec FILE")
    overrides = {}
    if args.nodes is not None:
        overrides["nodes"] = args.nodes
    if args.records is not None:
        overrides["record_count"] = args.records
    if args.ops is not None:
        overrides["operation_count"] = args.ops
    return spec.scaled(**overrides) if overrides else spec


def _cmd_demo(args: argparse.Namespace) -> int:
    cluster = DataFlasksCluster(
        n=args.nodes, config=DataFlasksConfig(num_slices=args.slices), seed=args.seed
    )
    print(f"booting {args.nodes} nodes / {args.slices} slices ...")
    cluster.warm_up(10)
    converged = cluster.wait_for_slices(timeout=120)
    print(f"slicing converged: {converged}; populations {cluster.slice_population()}")
    client = cluster.new_client()
    cluster.put_sync(client, "demo:key", b"hello dataflasks", version=1)
    result = cluster.get_sync(client, "demo:key")
    print(f"get(demo:key) -> {result.value!r} (version {result.result_version})")
    cluster.sim.run_for(15)
    print(f"replication level: {cluster.replication_level('demo:key')}")
    print(f"per-node message load: {cluster.server_message_load()['handled']:.1f}")
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    rows = run_constant_slices(
        node_counts=args.nodes,
        num_slices=args.slices,
        record_count=args.records,
        seed=args.seed,
    )
    print(rows_to_table(rows, FIG_COLUMNS))
    print(
        format_series(
            "Figure 3 (expected: roughly flat)",
            "nodes",
            "msgs/node",
            [(r["n"], r["messages_per_node"]) for r in rows],
        )
    )
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    rows = run_proportional_slices(
        node_counts=args.nodes,
        nodes_per_slice=args.nodes_per_slice,
        records_per_slice=args.records_per_slice,
        seed=args.seed,
    )
    print(rows_to_table(rows, FIG_COLUMNS))
    print(
        format_series(
            "Figure 4 (expected: growing with system size)",
            "nodes",
            "msgs/node",
            [(r["n"], r["messages_per_node"]) for r in rows],
        )
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    cluster = DataFlasksCluster(
        n=args.nodes, config=DataFlasksConfig(num_slices=args.slices), seed=args.seed
    )
    cluster.warm_up(10)
    cluster.wait_for_slices(timeout=120)
    client = cluster.new_client()
    for i in range(args.keys):
        cluster.put_sync(client, f"check:{i}", f"value-{i}".encode(), version=1)
    cluster.sim.run_for(20)
    report = check_cluster(cluster)
    print(report.summary())
    print(f"healthy: {report.healthy}")
    return 0 if report.healthy else 1


def _cmd_backends(args: argparse.Namespace) -> int:
    # Only `list` exists today; argparse enforces the action.
    rows = [
        {"name": name, "class": cls.__name__, "description": cls.description}
        for name, cls in REGISTRY.items()
    ]
    print(rows_to_table(rows, ["name", "class", "description"]))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.action == "list":
        rows = [
            {
                "name": name,
                "stack": spec.stack,
                "nodes": spec.nodes,
                "churn": spec.churn.kind if spec.churn else "-",
                "faults": ",".join(f.kind for f in spec.faults) or "-",
                "workload": spec.workload.preset,
                "mode": spec.workload.mode,
                "description": spec.description,
            }
            for name, spec in load_all_bundled().items()
        ]
        print(
            rows_to_table(
                rows,
                ["name", "stack", "nodes", "churn", "faults", "workload", "mode",
                 "description"],
            )
        )
        return 0

    if args.action == "validate":
        return _validate_spec(args.spec)

    spec = _resolve_spec(args)
    if args.action == "run":
        recorder = _build_recorder(spec, args)
        result = run_scenario(
            spec,
            seed=args.seed,
            recorder=recorder,
            sanitize=args.sanitize,
            isolation_check=args.isolation_check,
            protocol_coverage=args.protocol_coverage,
        )
        if args.summary:
            print(result.summary_json())
        elif args.brief:
            for line in _brief_lines(spec, result):
                print(line)
        else:
            print(f"scenario: {result.scenario} (seed {result.seed})")
            print(
                format_table(
                    ["metric", "value"], sorted(result.metrics.items())
                )
            )
        if recorder is not None:
            obs_dir = args.obs_dir or os.path.join(
                "obs", f"{result.scenario}-s{result.seed}"
            )
            manifest_path = recorder.write_artifacts(obs_dir, spec, result)
            # Artifact chatter goes to stderr: --summary stdout is
            # byte-compared in CI and must stay pure.
            print(f"obs artifacts: {obs_dir} ({manifest_path})", file=sys.stderr)
            print(f"inspect with: repro report {obs_dir}", file=sys.stderr)
        if args.protocol_coverage:
            _print_protocol_coverage()
        return 0

    # sweep
    result = run_sweep(
        spec,
        seeds=args.seeds,
        jobs=args.jobs,
        sanitize=args.sanitize,
        isolation_check=args.isolation_check,
        protocol_coverage=args.protocol_coverage,
    )
    if args.protocol_coverage and args.jobs <= 1:
        # With --jobs > 1 the counters accumulated inside the workers;
        # a report here would be vacuously empty, so skip it.
        _print_protocol_coverage()
    if args.summary:
        print(result.summary_json())
        return 0
    print(f"scenario: {result.scenario} over seeds {result.seeds}")
    print(
        rows_to_table(
            aggregate_table_rows(result.aggregate),
            ["metric", "mean", "stdev", "min", "max", "n"],
        )
    )
    return 0


def _validate_spec(target: str) -> int:
    """Check a spec file (or bundled name) without running it: parse it
    (which resolves ``stack`` against the backend registry), then build
    every runtime object it describes — latency model, churn model,
    workload, and the full ``[faults]`` injector schedule."""
    try:
        if target.endswith((".toml", ".json")):
            spec = load_spec(target)
        else:
            spec = load_bundled(target)
        spec.latency.build()
        if spec.churn is not None:
            spec.churn.build(population=spec.nodes)
        spec.workload.build()
        injectors = [f.build() for f in spec.faults]
    except OSError as exc:
        print(f"error: cannot read spec: {exc}")
        return 2
    except (ConfigurationError, ValueError) as exc:
        # ValueError covers TOML/JSON decode errors; ConfigurationError
        # covers every semantic check the sub-specs run on construction.
        print(f"error: invalid spec: {exc}")
        return 2
    backend = get_backend(spec.stack)  # registry-checked at spec build too
    print(f"spec OK: {spec.name} ({spec.stack}, {spec.nodes} nodes, seed {spec.seed})")
    print(f"  backend: {spec.stack} — {backend.description}")
    drive = spec.workload.mode
    if drive == "open":
        drive += (
            f", {spec.workload.clients} clients, "
            f"{spec.workload.rate:g} ops/s {spec.workload.arrival}"
        )
    print(
        f"  workload: {spec.workload.preset} "
        f"(load {spec.workload.record_count}, txn {spec.workload.operation_count}, "
        f"{drive})"
    )
    print(f"  churn: {spec.churn.kind if spec.churn else '-'}")
    print(f"  metrics: {', '.join(spec.metrics)}")
    if injectors:
        rows = [
            {
                "kind": f.kind,
                "start": f.start,
                "heals_at": "-" if not f.needs_heal else f.end,
            }
            for f in injectors
        ]
        print("  faults:")
        print(rows_to_table(rows, ["kind", "start", "heals_at"]))
    else:
        print("  faults: none")
    return 0


def _build_recorder(spec: ScenarioSpec, args: argparse.Namespace):
    """The run's :class:`~repro.obs.recorder.FlightRecorder`, or ``None``.

    Each pillar is on when its CLI flag forces it, or when the spec's
    ``[observability]`` section enables it and ``--no-obs`` was not
    given. Spec-level tuning (window, sample rate) always comes from the
    spec.
    """
    obs = spec.observability
    spec_on = obs.enabled and not args.no_obs
    want_timeline = args.timeline or (spec_on and obs.timeline)
    want_trace = args.trace or (spec_on and obs.trace)
    want_profile = args.profile or (spec_on and obs.profile)
    if not (want_timeline or want_trace or want_profile):
        return None
    from repro.obs import FlightRecorder

    return FlightRecorder.from_spec(
        obs, timeline=want_timeline, trace=want_trace, profile=want_profile
    )


def _brief_lines(spec: ScenarioSpec, result) -> List[str]:
    """The human top-line for one run: what happened, what it damaged."""
    m = result.metrics

    def count(key: str) -> int:
        return int(m.get(key, 0.0))

    lines = [
        f"{result.scenario}: {spec.stack} stack, {count('population_total') or spec.nodes} "
        f"nodes, seed {result.seed}"
    ]
    if "txn_ops" in m:
        ops = (
            f"  ops: {count('load_ops')} loaded, {count('txn_ops')} transactions "
            f"({m.get('txn_success_rate', 0.0):.1%} ok"
        )
        if "txn_offered" in m:
            ops += (
                f"; open loop: {count('txn_offered')} offered, "
                f"{count('txn_timed_out')} timed out"
            )
        lines.append(ops + ")")
        kinds = sorted(
            key[len("latency_"):-len("_p99")]
            for key in m
            if key.startswith("latency_") and key.endswith("_p99")
        )
        for kind in kinds:
            lines.append(
                f"  latency ({kind}): p50 {m.get(f'latency_{kind}_p50', 0.0):g}s "
                f"p99 {m.get(f'latency_{kind}_p99', 0.0):g}s"
            )
    if "stale_reads" in m:
        lines.append(
            f"  damage: {count('stale_reads')} stale reads, "
            f"{count('lost_updates')} lost updates, "
            f"{count('lost_objects')} lost objects"
        )
        lines.append(
            f"  availability: {count('unavail_windows')} windows over "
            f"{count('unavail_keys')} keys "
            f"(mean {m.get('unavail_window_mean', 0.0):g}s, "
            f"max {m.get('unavail_window_max', 0.0):g}s)"
        )
    if "faults_injected" in m:
        lines.append(
            f"  faults: {count('faults_injected')} injected, "
            f"{count('faults_healed')} healed"
        )
    lines.append(
        f"  sim: {m.get('sim_time', 0.0):g}s, "
        f"{count('events_processed')} events"
    )
    return lines


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.timeline import format_timeline
    from repro.obs import load_manifest

    try:
        manifest = load_manifest(args.directory)
    except OSError as exc:
        print(f"error: cannot read manifest: {exc}")
        return 2
    directory = (
        os.path.dirname(args.directory)
        if os.path.isfile(args.directory)
        else args.directory
    )
    env = manifest.get("environment", {})
    wall = manifest.get("wall", {})
    print(
        f"run: {manifest.get('scenario')} ({manifest.get('stack')}, "
        f"{manifest.get('nodes')} nodes, seed {manifest.get('seed')})"
    )
    print(
        f"  repro {env.get('package_version', '?')} on python "
        f"{env.get('python', '?')}; wall {wall.get('total_s', 0.0):g}s"
    )
    print(f"  spec sha256: {manifest.get('spec_sha256', '?')[:16]}…")
    phases = wall.get("phases", {})
    if phases:
        print(
            "  phases: "
            + ", ".join(f"{name} {secs:g}s" for name, secs in phases.items())
        )
    obs = manifest.get("observability", {})
    artifacts = {a["name"]: a for a in manifest.get("artifacts", [])}

    timeline_path = os.path.join(directory, "timeline.json")
    if "timeline.json" in artifacts and os.path.exists(timeline_path):
        with open(timeline_path, "r", encoding="utf-8") as f:
            timeline = json.load(f)
        print(f"\ntimeline ({len(timeline['windows'])} windows, rates are per second):")
        print(format_timeline(timeline))

    if "trace.json" in artifacts:
        print(
            f"\ntrace: {obs.get('sampled_ops', 0)}/{obs.get('total_ops', 0)} ops "
            f"sampled, {obs.get('hops', 0)} hops, {obs.get('drops', 0)} drops"
        )
        print(
            f"  load {os.path.join(directory, 'trace.json')} in Perfetto "
            "(ui.perfetto.dev) or chrome://tracing"
        )

    hotspots_path = os.path.join(directory, "hotspots.json")
    if "hotspots.json" in artifacts and os.path.exists(hotspots_path):
        with open(hotspots_path, "r", encoding="utf-8") as f:
            prof = json.load(f)
        print(
            f"\nhotspots ({prof['total_events']} events, "
            f"{prof['total_wall_s']:g}s in handlers):"
        )
        print(_hotspot_table(prof["hotspots"], top=args.top))
    return 0


def _hotspot_table(rows: List[Dict[str, object]], top: int) -> str:
    """Fixed-width rendering of a ``hotspots.json`` row list (same shape
    :meth:`HotspotProfiler.table` prints for a live profiler)."""
    rows = rows[:top]
    if not rows:
        return "(no events profiled)"
    width = max(len("handler"), max(len(str(r["handler"])) for r in rows))
    lines = [
        f"{'handler':<{width}}  {'events':>9}  {'wall_s':>9}  "
        f"{'share':>6}  {'us/event':>9}"
    ]
    for r in rows:
        lines.append(
            f"{str(r['handler']):<{width}}  {int(r['events']):>9}  "
            f"{float(r['wall_s']):>9.3f}  {float(r['share']):>6.1%}  "
            f"{float(r['us_per_event']):>9.2f}"
        )
    return "\n".join(lines)


def _hunt_config(args: argparse.Namespace) -> "HuntConfig":
    from repro.search import HuntConfig

    return HuntConfig(
        search_seed=args.seed,
        budget=getattr(args, "budget", 1),
        stack=args.stack,
        nodes=args.nodes,
        records=args.records,
        operations=args.ops,
        timeline_window=getattr(args, "timeline_window", 0.0),
    )


def _print_schedule(faults) -> None:
    def targets(f) -> str:
        if f.kind == "burst_loss":
            return "all links"
        if f.nodes:
            return str(f.nodes)
        if f.groups:
            return str(f.groups)
        return f"{f.fraction:g} of cluster"

    rows = [
        {
            "kind": f.kind,
            "start": f.start,
            "duration": f.duration,
            "targets": targets(f),
            "loss": f.loss or "-",
        }
        for f in faults
    ]
    print(rows_to_table(rows, ["kind", "start", "duration", "targets", "loss"]))


def _cmd_hunt(args: argparse.Namespace) -> int:
    from repro.search import (
        check_bounds,
        export_candidate,
        list_regressions,
        load_regression,
        run_hunt,
        score_scenario,
        shrink_candidate,
    )

    if args.action == "replay":
        paths: List[str] = []
        for target in args.specs:
            found = list_regressions(target)
            paths.extend(found if found else [target])
        failures = 0
        for path in paths:
            try:
                reg = load_regression(path)
            except OSError as exc:
                print(f"error: cannot read regression spec: {exc}")
                return 2
            score = score_scenario(reg.scenario)
            problems = check_bounds(reg, score)
            if args.summary:
                print(score.summary_json())
            status = "ok" if not problems else "FAIL"
            print(f"{status}: {reg.name} ({path})")
            for problem in problems:
                print(f"  {problem}")
                failures += 1
        return 1 if failures else 0

    config = _hunt_config(args)

    if args.action == "shrink":
        result = shrink_candidate(
            config, args.candidate, shrink_budget=args.shrink_budget
        )
        print(
            f"shrunk candidate {args.candidate} of seed {config.search_seed} "
            f"to {result.injectors} injector(s) in {result.evals} evaluations"
            + (" (budget exhausted)" if result.exhausted else "")
        )
        for step in result.steps:
            print(f"  {step}")
        _print_schedule(result.faults)
        print(f"damage: {result.score.summary_json()}")
        if args.export:
            path = export_candidate(args.export, config, args.candidate, result)
            print(f"exported regression spec: {path}")
        return 0

    # run
    def progress(candidate) -> None:
        if args.summary:
            return
        flag = "VIOLATION" if candidate.violation else "clean"
        kinds = ",".join(f.kind for f in candidate.faults)
        print(
            f"candidate {candidate.index}: {flag:9s} "
            f"total={candidate.score.total:g} [{kinds}]"
        )

    result = run_hunt(config, progress=progress)
    log = result.log_json()
    if args.log:
        with open(args.log, "w", encoding="utf-8") as f:
            f.write(log + "\n")
    if args.summary:
        print(log)
    else:
        print(
            f"hunt: {len(result.violations)}/{config.budget} candidates "
            f"violated consistency ({config.stack} vs {config.oracle_stack}, "
            f"seed {config.search_seed})"
        )
    best = result.best
    if best is None:
        return 0
    if not args.summary:
        print(f"best: candidate {best.index} (damage {best.score.total:g})")
        _print_schedule(best.faults)
    if args.shrink:
        shrunk = shrink_candidate(config, best.index, faults=best.faults)
        if not args.summary:
            print(
                f"shrunk to {shrunk.injectors} injector(s) "
                f"in {shrunk.evals} evaluations"
            )
            _print_schedule(shrunk.faults)
        if args.export:
            path = export_candidate(args.export, config, best.index, shrunk)
            print(f"exported regression spec: {path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        LintConfig,
        baseline_from_violations,
        format_json,
        format_text,
        lint_paths,
        render_policy_toml,
    )

    config = LintConfig.load(args.config)
    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    ignore_families = args.ignore_family or None
    if args.write_baseline:
        # Regenerate against an empty baseline so existing budget entries
        # don't absorb the violations we are trying to record.
        from dataclasses import replace

        result = lint_paths(
            args.paths,
            replace(config, baseline=[]),
            select=select,
            ignore_families=ignore_families,
        )
        baseline = baseline_from_violations(result.violations)
        with open(args.write_baseline, "w", encoding="utf-8") as f:
            f.write(render_policy_toml(config, baseline))
        print(
            f"wrote {args.write_baseline}: {len(baseline)} baseline "
            f"entr{'y' if len(baseline) == 1 else 'ies'} absorbing "
            f"{len(result.violations)} violation(s) — fill in each "
            "justification before committing"
        )
        return 0
    result = lint_paths(
        args.paths, config, select=select, ignore_families=ignore_families
    )
    if args.format == "json":
        print(format_json(result))
    else:
        print(format_text(result, verbose=args.verbose))
    return result.exit_code


def _default_protocol_paths() -> list:
    """The installed ``repro`` package — the tree the runtime actually
    executes, so runtime coverage and the static graph always describe
    the same code."""
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


def _cmd_protocol(args: argparse.Namespace) -> int:
    from repro.lint import LintConfig, build_protocol_graph

    config = LintConfig.load(args.config)
    paths = args.paths or _default_protocol_paths()
    graph = build_protocol_graph(paths, config)
    artifact = graph.to_dot() if args.format == "dot" else graph.to_json()
    sys.stdout.write(artifact)
    return 0


def _print_protocol_coverage() -> None:
    """After a ``--protocol-coverage`` run: diff the static handler
    edges against the runtime handled counters. Chatter goes to stderr —
    ``--summary`` stdout is byte-compared in CI and must stay pure."""
    from repro.lint import (
        LintConfig,
        build_protocol_graph,
        coverage_snapshot,
        unexercised_edges,
    )

    graph = build_protocol_graph(_default_protocol_paths(), LintConfig.load(None))
    snapshot = coverage_snapshot()
    missing = unexercised_edges(graph)
    total = len(graph.handle_edges())
    handled = sum(snapshot["handled"].values())
    print(
        f"protocol coverage: {total - len(missing)}/{total} static handler "
        f"edges exercised ({handled} handled deliveries)",
        file=sys.stderr,
    )
    for endpoint, message, handlers in missing:
        names = ", ".join(handlers) if handlers else "?"
        print(
            f"  unexercised: {message} -> {endpoint}.{names}",
            file=sys.stderr,
        )


_COMMANDS = {
    "demo": _cmd_demo,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "check": _cmd_check,
    "backends": _cmd_backends,
    "scenarios": _cmd_scenarios,
    "report": _cmd_report,
    "hunt": _cmd_hunt,
    "lint": _cmd_lint,
    "protocol": _cmd_protocol,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return 2
    except DeterminismError as exc:
        # A sanitized run tripped a runtime guard: report the offender
        # the same way `repro lint` reports its static counterpart.
        print(f"determinism violation: {exc}")
        return 3
    except IsolationError as exc:
        # An --isolation-check run caught an in-flight payload mutation.
        print(f"isolation violation: {exc}")
        return 3

"""DATADROPLETS-lite: the STRATUS soft-state layer over DATAFLASKS.

Supplies the contract the substrate assumes from above — totally ordered
version stamps, client interface, caching, crash-rebuildable soft state.
"""

from repro.droplets.session import DropletsSession

__all__ = ["DropletsSession"]

"""DATADROPLETS-lite: the soft-state layer above DATAFLASKS.

STRATUS (paper Section III) stacks a soft-state layer over the
persistent substrate: "DATADROPLETS [...] provides 1) client interface,
2) caching, 3) concurrency control, and 4) high level processing", and
crucially it "is responsible for correctly ordering requests, which is
done by attaching version stamps to every object". DATAFLASKS assumes
those stamps exist; this module supplies a working miniature of the
layer so the whole stratified design runs end to end:

* **client interface** — ``put(key, value)`` / ``get(key)`` with no
  version bookkeeping exposed to the caller;
* **concurrency control** — a per-key monotonic version counter; the
  session discovers the current version of unknown keys from the
  substrate before writing (so sessions can hand keys over);
* **caching** — a bounded write-through LRU serving read-your-writes
  without touching the network;
* **soft state** — :meth:`rebuild` reconstructs counters and cache from
  the persistent layer after a crash, the recoverability property the
  paper demands ("it should be possible to reconstruct it completely
  from the persistent-state layer").

Scope note: the full DATADROPLETS is itself a distributed layer with a
DHT among a moderate number of stateful brokers; a single-session
miniature preserves the *contract* the bottom layer depends on (ordered
version stamps) without reproducing that second paper.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional

from repro.core.client import DataFlasksClient
from repro.core.cluster import DataFlasksCluster
from repro.errors import ClientError, ConfigurationError

__all__ = ["DropletsSession"]


class _LruCache:
    """Bounded LRU of key -> (version, value)."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError("cache capacity must be positive")
        self.capacity = capacity
        self._data: "OrderedDict[str, tuple]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Optional[tuple]:
        entry = self._data.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, version: int, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = (version, value)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def invalidate(self, key: str) -> None:
        self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data


class DropletsSession:
    """A client session with versioning, ordering and caching.

    :param cluster: the DATAFLASKS deployment to talk to.
    :param client: optional existing substrate client (one is created
        otherwise).
    :param acks_required: substrate ack quorum per write.
    :param cache_capacity: entries kept in the read cache.

    Ordering contract: within a session, writes to a key receive strictly
    increasing versions, and a read after a write observes that write
    (read-your-writes) — the exact guarantees the substrate expects from
    the layer above. Two *concurrent* sessions writing the same key must
    coordinate externally, as in the paper (DATADROPLETS serialises
    writes per key before they reach DATAFLASKS).
    """

    def __init__(
        self,
        cluster: DataFlasksCluster,
        client: Optional[DataFlasksClient] = None,
        acks_required: int = 1,
        cache_capacity: int = 1024,
        op_timeout: float = 30.0,
    ) -> None:
        self.cluster = cluster
        self.client = client if client is not None else cluster.new_client()
        self.acks_required = acks_required
        self.op_timeout = op_timeout
        self._versions: Dict[str, int] = {}
        self._cache = _LruCache(cache_capacity)

    # ----------------------------------------------------------------- API

    def put(self, key: str, value: Any) -> int:
        """Write ``value`` under the next version of ``key``.

        Returns the version stamp assigned. Raises
        :class:`~repro.errors.ClientError` when the substrate write fails.
        """
        version = self._next_version(key)
        op = self.cluster.put_sync(
            self.client, key, value, version, self.acks_required, timeout=self.op_timeout
        )
        if not op.succeeded:
            # Roll the counter back so a retry does not skip a version.
            self._versions[key] = version - 1
            raise ClientError(f"substrate rejected put({key!r} v{version}): {op.error}")
        self._versions[key] = version
        self._cache.put(key, version, value)
        return version

    def get(self, key: str) -> Optional[Any]:
        """Read the latest value of ``key`` (cache first), None if absent."""
        cached = self._cache.get(key)
        if cached is not None:
            return cached[1]
        op = self.cluster.get_sync(self.client, key, timeout=self.op_timeout)
        if not op.succeeded:
            return None
        assert op.result_version is not None
        self._cache.put(key, op.result_version, op.value)
        # A read also teaches us the key's current version.
        self._versions[key] = max(self._versions.get(key, 0), op.result_version)
        return op.value

    def get_version(self, key: str, version: int) -> Optional[Any]:
        """Read one exact historical version (bypasses the cache)."""
        op = self.cluster.get_sync(self.client, key, version=version, timeout=self.op_timeout)
        return op.value if op.succeeded else None

    def current_version(self, key: str) -> Optional[int]:
        """The session's view of the key's version (None if never seen)."""
        return self._versions.get(key)

    # ------------------------------------------------------------ soft state

    def rebuild(self, keys: Iterable[str]) -> int:
        """Reconstruct soft state from the persistent layer.

        Models DATADROPLETS recovering after a catastrophic failure: the
        cache is dropped and per-key version counters are re-learnt from
        the substrate. Returns how many keys were recovered.
        """
        self._cache.clear()
        self._versions.clear()
        recovered = 0
        for key in keys:
            op = self.cluster.get_sync(self.client, key, timeout=self.op_timeout)
            if op.succeeded and op.result_version is not None:
                self._versions[key] = op.result_version
                self._cache.put(key, op.result_version, op.value)
                recovered += 1
        return recovered

    # ------------------------------------------------------------- internals

    def _next_version(self, key: str) -> int:
        known = self._versions.get(key)
        if known is None:
            # Key handover: learn the substrate's current version first.
            op = self.cluster.get_sync(self.client, key, timeout=self.op_timeout)
            known = op.result_version if op.succeeded and op.result_version else 0
        version = known + 1
        self._versions[key] = version
        return version

    # -------------------------------------------------------------- metrics

    @property
    def cache_hits(self) -> int:
        return self._cache.hits

    @property
    def cache_misses(self) -> int:
        return self._cache.misses
